// Flash crowd: a hand-built trace drives a burst of demand for one file.
//
// The paper's Fig. 2 story — download distance *improves* as queries
// accumulate, because every successful download mints a new provider — is
// easiest to see in its extreme form: hundreds of peers requesting the same
// file in a short window. This example builds that workload as a trace
// (exercising the record/replay API), runs Locaware and Flooding on it, and
// prints how the crowd's download distance collapses as replicas spread.
#include <cstdio>
#include <fstream>
#include <future>

#include "core/engine.h"
#include "core/experiment.h"

namespace {

using namespace locaware;

core::ExperimentConfig BaseConfig(core::ProtocolKind kind) {
  core::ExperimentConfig cfg = core::MakePaperConfig(kind, /*num_queries=*/1, 2026);
  cfg.num_peers = 400;
  cfg.underlay.num_routers = 100;
  cfg.catalog.num_files = 1200;
  cfg.catalog.keyword_pool_size = 3600;
  return cfg;
}

}  // namespace

int main() {
  // Discover the catalog (deterministic from the seed) by building one
  // engine, then write a flash-crowd trace against it: 400 queries for the
  // same file from random peers, ~2 per second.
  auto scout = std::move(core::Engine::Create(BaseConfig(core::ProtocolKind::kLocaware)))
                   .ValueOrDie();
  // Pick a file someone actually shares at t=0 — with 400x3 copies over 1200
  // files, ~1/e of files start unhosted and a crowd for one of those would
  // fail for every protocol.
  FileId hot = 0;
  bool found = false;
  for (PeerId p = 0; p < scout->num_peers() && !found; ++p) {
    for (FileId f : scout->node(p).file_store) {
      hot = f;
      found = true;
      break;
    }
  }
  const auto& kws = scout->catalog().keywords(hot);
  std::printf("flash crowd target: \"%s\" (file %u)\n",
              scout->catalog().filename(hot).c_str(), hot);

  const std::string trace_path = "/tmp/locaware_flash_crowd.trace";
  {
    // Traces are a string edge: ids resolve to words through the catalog.
    std::ofstream trace(trace_path);
    Rng rng(7);
    sim::SimTime t = 0;
    for (int i = 0; i < 400; ++i) {
      t += sim::FromSeconds(rng.Exponential(2.0));  // ~2 queries/s
      const PeerId requester = static_cast<PeerId>(rng.UniformInt(0, 399));
      // 1-2 keywords of the hot filename, like real keyword queries.
      trace << i << ' ' << requester << ' ' << hot << ' ' << t << ' '
            << scout->catalog().keyword(kws[0]);
      if (rng.Bernoulli(0.5)) trace << ' ' << scout->catalog().keyword(kws[1]);
      trace << '\n';
    }
  }

  auto run = [&](core::ProtocolKind kind) {
    return std::async(std::launch::async, [&, kind] {
      core::ExperimentConfig cfg = BaseConfig(kind);
      cfg.trace_path = trace_path;
      return std::move(core::RunExperiment(cfg, /*num_buckets=*/8)).ValueOrDie();
    });
  };
  auto locaware_f = run(core::ProtocolKind::kLocaware);
  auto flooding_f = run(core::ProtocolKind::kFlooding);
  const core::ExperimentResult locaware = locaware_f.get();
  const core::ExperimentResult flooding = flooding_f.get();

  std::printf("\ncrowd of 400 queries for one file, 400 peers:\n");
  std::printf("%-10s %10s %12s %14s %12s\n", "protocol", "success", "msgs/query",
              "download ms", "loc-match");
  for (const auto* r : {&flooding, &locaware}) {
    std::printf("%-10s %9.1f%% %12.1f %14.1f %11.1f%%\n", r->label.c_str(),
                r->summary.success_rate * 100, r->summary.msgs_per_query,
                r->summary.avg_download_ms, r->summary.loc_match_rate * 100);
  }

  std::printf("\ndownload distance as the crowd progresses (bucket averages):\n");
  std::printf("%10s %12s %12s\n", "queries", "Flooding", "Locaware");
  for (size_t i = 0; i < locaware.series.size(); ++i) {
    std::printf("%10llu %12.1f %12.1f\n",
                static_cast<unsigned long long>(locaware.series[i].queries_end),
                flooding.series[i].avg_download_ms,
                locaware.series[i].avg_download_ms);
  }
  std::printf(
      "\nreading guide: every satisfied requester becomes a provider, so the\n"
      "file's replica set explodes during the crowd. Locaware's indexes track\n"
      "the new replicas (with locIds) and route the next wave to nearby ones;\n"
      "Flooding finds replicas too, but picks distance-blind.\n");
  return 0;
}
