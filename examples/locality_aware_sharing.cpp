// Locality-aware sharing: a close look at the landmark/locId machinery that
// gives Locaware its name (paper §4.1.1).
//
// The scenario: a file-sharing community spread over a synthetic Internet.
// We build the BRITE-style underlay directly, compute every peer's locId from
// its landmark RTT ordering, inspect how peers cluster into localities, and
// then demonstrate provider selection: locId match first, RTT probing as the
// fallback — exactly the strategy of §5.1.
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "core/provider_selection.h"
#include "net/landmark.h"
#include "net/underlay.h"

int main() {
  using namespace locaware;

  // --- 1. The physical network ------------------------------------------
  Rng rng(7);
  net::GeometricUnderlayConfig net_cfg;
  net_cfg.num_routers = 200;
  net_cfg.num_peers = 1000;
  net_cfg.num_landmarks = 4;  // 4! = 24 locIds, the paper's sweet spot
  auto built = net::GeometricUnderlay::Build(net_cfg, &rng);
  if (!built.ok()) {
    std::fprintf(stderr, "underlay: %s\n", built.status().ToString().c_str());
    return 1;
  }
  const auto& underlay = *built.ValueOrDie();
  std::printf("underlay: %s\n\n", underlay.Describe().c_str());

  // --- 2. locIds: landmark RTT orderings --------------------------------
  const PeerId probe = 123;
  std::printf("peer %u measures its landmarks:\n", probe);
  for (size_t l = 0; l < underlay.num_landmarks(); ++l) {
    std::printf("  landmark %zu: %6.1f ms RTT\n", l, underlay.LandmarkRttMs(probe, l));
  }
  const LocId probe_loc = net::ComputeLocId(underlay, probe);
  std::printf("  -> ordering by increasing RTT gives locId %u\n\n", probe_loc);

  const std::vector<LocId> loc_ids = net::ComputeAllLocIds(underlay);
  const net::LocIdStats stats = net::AnalyzeLocIds(loc_ids, net_cfg.num_landmarks);
  std::printf("locality census over %zu peers:\n", loc_ids.size());
  std::printf("  possible locIds        : %u (= 4!)\n", stats.num_possible);
  std::printf("  inhabited locIds       : %u\n", stats.num_inhabited);
  std::printf("  mean peers per locality: %.1f\n", stats.mean_peers_per_inhabited);
  std::printf("  largest locality       : %u peers\n", stats.max_peers);
  std::printf("(the paper argues ~%0.f peers per locality is what makes\n"
              " same-locality providers findable; 5 landmarks would scatter\n"
              " 1000 peers over 120 locIds ≈ 8 each)\n\n",
              stats.mean_peers_per_inhabited);

  // --- 3. Locality coherence: same locId ⇒ close ------------------------
  double same_sum = 0, diff_sum = 0;
  size_t same_n = 0, diff_n = 0;
  for (PeerId a = 0; a < 200; ++a) {
    for (PeerId b = a + 1; b < 200; ++b) {
      if (loc_ids[a] == loc_ids[b]) {
        same_sum += underlay.RttMs(a, b);
        ++same_n;
      } else {
        diff_sum += underlay.RttMs(a, b);
        ++diff_n;
      }
    }
  }
  std::printf("mean RTT between same-locId peers : %6.1f ms (%zu pairs)\n",
              same_n ? same_sum / same_n : 0.0, same_n);
  std::printf("mean RTT between diff-locId peers : %6.1f ms (%zu pairs)\n\n",
              diff_n ? diff_sum / diff_n : 0.0, diff_n);

  // --- 4. Provider selection, the Locaware way --------------------------
  // Suppose a response offered three providers for the requested file.
  std::vector<core::Candidate> offers;
  for (PeerId provider : {PeerId{40}, PeerId{410}, PeerId{860}}) {
    core::Candidate c;
    c.provider = provider;
    c.loc_id = loc_ids[provider];
    c.file = 42;  // the requested file's catalog id
    offers.push_back(c);
  }
  std::printf("requester %u (locId %u) got offers:\n", probe, probe_loc);
  for (const auto& c : offers) {
    std::printf("  provider %4u  locId %2u  true RTT %6.1f ms%s\n", c.provider,
                c.loc_id, underlay.RttMs(probe, c.provider),
                c.loc_id == probe_loc ? "   <- same locality" : "");
  }

  Rng pick_rng(99);
  const core::SelectionOutcome outcome =
      core::SelectProvider(core::SelectionStrategy::kLocIdThenRtt, offers, probe,
                           probe_loc, underlay, &pick_rng);
  const core::Candidate& chosen = offers[outcome.chosen];
  std::printf("\nlocId-then-RTT picked provider %u (%.1f ms away, %llu probe msgs)\n",
              chosen.provider, underlay.RttMs(probe, chosen.provider),
              static_cast<unsigned long long>(outcome.probe_msgs));

  const core::SelectionOutcome random_pick =
      core::SelectProvider(core::SelectionStrategy::kRandom, offers, probe, probe_loc,
                           underlay, &pick_rng);
  std::printf("a location-oblivious peer would pick provider %u (%.1f ms away)\n",
              offers[random_pick.chosen].provider,
              underlay.RttMs(probe, offers[random_pick.chosen].provider));
  return 0;
}
