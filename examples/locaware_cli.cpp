// locaware_cli — run any experiment from the command line.
//
//   locaware_cli --protocol=locaware --queries=5000 --seed=42
//   locaware_cli --config=my_run.cfg --json
//   locaware_cli --protocol=dicas --save-config=dicas.cfg --dry-run
//   locaware_cli --protocol=locaware --set churn.enabled=true --set params.ttl=5
//   locaware_cli --save-trace=storm.bin --dry-run
//   locaware_cli convert storm.trace storm.bin
//
// Precedence: paper defaults < --config file < individual flags/--set pairs.
// Output: human summary by default, --json for machine consumption,
// --svg=PREFIX to drop per-metric charts.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "catalog/workload.h"
#include "core/config_io.h"
#include "core/experiment.h"
#include "metrics/svg_plot.h"

namespace {

using namespace locaware;

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [options]\n"
               "       %s convert IN OUT\n"
               "  --protocol=NAME     flooding | dicas | dicas-keys | locaware\n"
               "  --queries=N         number of queries (default 5000)\n"
               "  --seed=S            RNG seed (default 42)\n"
               "  --buckets=B         series resolution (default 10)\n"
               "  --config=FILE       load a config file (key = value)\n"
               "  --set KEY=VALUE     override any config key (repeatable), e.g.\n"
               "                      scheduler.shards=8 scheduler.placement=clustered\n"
               "  --save-config=FILE  write the effective config and continue\n"
               "  --save-trace=FILE   write the config's query trace and continue\n"
               "                      (binary when FILE ends in .bin, else text)\n"
               "  --dry-run           stop after config handling, run nothing\n"
               "  --json              print the result as JSON\n"
               "  --svg=PREFIX        write PREFIX-{success,traffic,distance}.svg\n"
               "\n"
               "convert rewrites a trace between the text and binary formats\n"
               "(direction chosen by OUT's extension: .bin selects binary).\n",
               argv0, argv0);
  return 2;
}

bool EndsWithBin(const std::string& path) {
  return path.size() >= 4 && path.compare(path.size() - 4, 4, ".bin") == 0;
}

// `convert IN OUT`: re-encode a trace through a scratch catalog. LoadAuto
// interns every keyword the trace mentions, which is all SaveTrace/SaveBinary
// need to resolve them back to strings.
int Convert(const char* argv0, int argc, char** argv) {
  if (argc != 4) return Usage(argv0);
  const std::string in = argv[2];
  const std::string out = argv[3];
  catalog::FileCatalog scratch;
  auto loaded = catalog::QueryWorkload::LoadAuto(in, &scratch);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s: %s\n", in.c_str(),
                 loaded.status().ToString().c_str());
    return 1;
  }
  const catalog::QueryWorkload workload = std::move(loaded).ValueOrDie();
  const Status st = EndsWithBin(out) ? workload.SaveBinary(out, scratch)
                                     : workload.SaveTrace(out, scratch);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s: %s\n", out.c_str(), st.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %zu queries to %s (%s)\n",
               workload.queries().size(), out.c_str(),
               EndsWithBin(out) ? "binary" : "text");
  return 0;
}

// Regenerates the catalog and workload exactly as Engine::Setup would for
// `config` (same name-keyed RNG splits) and saves the query trace, so a
// later run with trace_path replays byte-identical metrics.
int SaveTrace(const core::ExperimentConfig& config, const std::string& path) {
  Rng root(config.seed);
  Rng catalog_rng = root.Split("catalog");
  auto catalog = catalog::FileCatalog::Generate(config.catalog, &catalog_rng);
  if (!catalog.ok()) {
    std::fprintf(stderr, "error: %s\n", catalog.status().ToString().c_str());
    return 1;
  }
  Rng workload_rng = root.Split("workload");
  auto workload = catalog::QueryWorkload::Generate(
      config.workload, catalog.ValueOrDie(), config.num_peers, &workload_rng);
  if (!workload.ok()) {
    std::fprintf(stderr, "error: %s\n", workload.status().ToString().c_str());
    return 1;
  }
  const Status st =
      EndsWithBin(path)
          ? workload.ValueOrDie().SaveBinary(path, catalog.ValueOrDie())
          : workload.ValueOrDie().SaveTrace(path, catalog.ValueOrDie());
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote trace to %s (%s)\n", path.c_str(),
               EndsWithBin(path) ? "binary" : "text");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "convert") == 0) {
    return Convert(argv[0], argc, argv);
  }

  core::ExperimentConfig config =
      core::MakePaperConfig(core::ProtocolKind::kLocaware, 5000, 42);
  size_t buckets = 10;
  bool as_json = false;
  bool dry_run = false;
  std::string save_config_path;
  std::string save_trace_path;
  std::string svg_prefix;
  std::vector<std::string> overrides;

  // First pass: config file (so flags can override it regardless of order).
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--config=", 9) == 0) {
      auto loaded = core::LoadConfig(argv[i] + 9);
      if (!loaded.ok()) {
        std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
        return 1;
      }
      config = loaded.ValueOrDie();
    }
  }

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--config=", 9) == 0) {
      continue;  // handled above
    } else if (std::strncmp(arg, "--protocol=", 11) == 0) {
      auto kind = core::ParseProtocolKind(arg + 11);
      if (!kind.ok()) {
        std::fprintf(stderr, "error: %s\n", kind.status().ToString().c_str());
        return 1;
      }
      config.protocol = kind.ValueOrDie();
      config.params = core::MakeDefaultParams(config.protocol);
      config.label = core::ProtocolKindName(config.protocol);
    } else if (std::strncmp(arg, "--queries=", 10) == 0) {
      config.workload.num_queries = std::strtoull(arg + 10, nullptr, 10);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      config.seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--buckets=", 10) == 0) {
      buckets = std::strtoull(arg + 10, nullptr, 10);
    } else if (std::strcmp(arg, "--set") == 0 && i + 1 < argc) {
      overrides.emplace_back(argv[++i]);
    } else if (std::strncmp(arg, "--save-config=", 14) == 0) {
      save_config_path = arg + 14;
    } else if (std::strncmp(arg, "--save-trace=", 13) == 0) {
      save_trace_path = arg + 13;
    } else if (std::strcmp(arg, "--dry-run") == 0) {
      dry_run = true;
    } else if (std::strcmp(arg, "--json") == 0) {
      as_json = true;
    } else if (std::strncmp(arg, "--svg=", 6) == 0) {
      svg_prefix = arg + 6;
    } else {
      return Usage(argv[0]);
    }
  }

  // --set overrides reuse the config parser: each KEY=VALUE is one line.
  for (const std::string& kv : overrides) {
    // Re-serialize, append the override, re-parse: keeps one source of truth
    // for key names and validation.
    auto patched = core::ParseConfig(core::FormatConfig(config) + "\n" + kv + "\n");
    if (!patched.ok()) {
      std::fprintf(stderr, "error in --set '%s': %s\n", kv.c_str(),
                   patched.status().ToString().c_str());
      return 1;
    }
    config = patched.ValueOrDie();
  }

  if (!save_config_path.empty()) {
    const Status st = core::SaveConfig(config, save_config_path);
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote config to %s\n", save_config_path.c_str());
  }
  if (!save_trace_path.empty()) {
    const int rc = SaveTrace(config, save_trace_path);
    if (rc != 0) return rc;
  }
  if (dry_run) {
    std::fputs(core::FormatConfig(config).c_str(), stdout);
    return 0;
  }

  auto result = core::RunExperiment(config, buckets);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  const core::ExperimentResult& r = result.ValueOrDie();

  if (as_json) {
    std::printf("%s\n", core::ResultToJson(r).c_str());
  } else {
    std::printf("%s: %llu queries, seed %llu\n", r.label.c_str(),
                static_cast<unsigned long long>(r.summary.num_queries),
                static_cast<unsigned long long>(config.seed));
    std::printf("  success rate       %.2f%%\n", r.summary.success_rate * 100);
    std::printf("  search traffic     %.1f msgs/query (%.0f bytes/query)\n",
                r.summary.msgs_per_query, r.summary.bytes_per_query);
    std::printf("  download distance  %.1f ms RTT\n", r.summary.avg_download_ms);
    std::printf("  same-locality DLs  %.1f%%\n", r.summary.loc_match_rate * 100);
    std::printf("  cache-served hits  %.1f%%\n", r.summary.cache_answer_share * 100);
    if (r.summary.bloom_update_msgs > 0) {
      std::printf("  bloom maintenance  %llu msgs / %llu bytes\n",
                  static_cast<unsigned long long>(r.summary.bloom_update_msgs),
                  static_cast<unsigned long long>(r.summary.bloom_update_bytes));
    }
    if (r.summary.churn_events > 0) {
      std::printf("  churn              %llu events, %llu stale failures\n",
                  static_cast<unsigned long long>(r.summary.churn_events),
                  static_cast<unsigned long long>(r.summary.stale_failures));
    }
  }

  if (!svg_prefix.empty()) {
    const std::vector<metrics::LabeledSeries> series{{r.label, r.series}};
    struct Chart {
      metrics::Field field;
      const char* suffix;
      const char* title;
      const char* y_label;
    };
    const Chart charts[] = {
        {metrics::Field::kSuccessRate, "success", "Success rate", "fraction"},
        {metrics::Field::kMsgsPerQuery, "traffic", "Search traffic",
         "messages per query"},
        {metrics::Field::kDownloadMs, "distance", "Download distance", "ms RTT"},
    };
    for (const Chart& chart : charts) {
      metrics::SvgChartOptions options;
      options.y_label = chart.y_label;
      const std::string path = svg_prefix + "-" + chart.suffix + ".svg";
      const Status st =
          metrics::WriteSvgChart(series, chart.field, chart.title, options, path);
      if (!st.ok()) {
        std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
        return 1;
      }
      std::fprintf(stderr, "wrote %s\n", path.c_str());
    }
  }
  return 0;
}
