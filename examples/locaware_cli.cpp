// locaware_cli — run any experiment from the command line.
//
//   locaware_cli --protocol=locaware --queries=5000 --seed=42
//   locaware_cli --config=my_run.cfg --json
//   locaware_cli --protocol=dicas --save-config=dicas.cfg --dry-run
//   locaware_cli --protocol=locaware --set churn.enabled=true --set params.ttl=5
//
// Precedence: paper defaults < --config file < individual flags/--set pairs.
// Output: human summary by default, --json for machine consumption,
// --svg=PREFIX to drop per-metric charts.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/config_io.h"
#include "core/experiment.h"
#include "metrics/svg_plot.h"

namespace {

using namespace locaware;

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [options]\n"
               "  --protocol=NAME     flooding | dicas | dicas-keys | locaware\n"
               "  --queries=N         number of queries (default 5000)\n"
               "  --seed=S            RNG seed (default 42)\n"
               "  --buckets=B         series resolution (default 10)\n"
               "  --config=FILE       load a config file (key = value)\n"
               "  --set KEY=VALUE     override any config key (repeatable)\n"
               "  --save-config=FILE  write the effective config and continue\n"
               "  --dry-run           stop after config handling, run nothing\n"
               "  --json              print the result as JSON\n"
               "  --svg=PREFIX        write PREFIX-{success,traffic,distance}.svg\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  core::ExperimentConfig config =
      core::MakePaperConfig(core::ProtocolKind::kLocaware, 5000, 42);
  size_t buckets = 10;
  bool as_json = false;
  bool dry_run = false;
  std::string save_config_path;
  std::string svg_prefix;
  std::vector<std::string> overrides;

  // First pass: config file (so flags can override it regardless of order).
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--config=", 9) == 0) {
      auto loaded = core::LoadConfig(argv[i] + 9);
      if (!loaded.ok()) {
        std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
        return 1;
      }
      config = loaded.ValueOrDie();
    }
  }

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--config=", 9) == 0) {
      continue;  // handled above
    } else if (std::strncmp(arg, "--protocol=", 11) == 0) {
      auto kind = core::ParseProtocolKind(arg + 11);
      if (!kind.ok()) {
        std::fprintf(stderr, "error: %s\n", kind.status().ToString().c_str());
        return 1;
      }
      config.protocol = kind.ValueOrDie();
      config.params = core::MakeDefaultParams(config.protocol);
      config.label = core::ProtocolKindName(config.protocol);
    } else if (std::strncmp(arg, "--queries=", 10) == 0) {
      config.workload.num_queries = std::strtoull(arg + 10, nullptr, 10);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      config.seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--buckets=", 10) == 0) {
      buckets = std::strtoull(arg + 10, nullptr, 10);
    } else if (std::strcmp(arg, "--set") == 0 && i + 1 < argc) {
      overrides.emplace_back(argv[++i]);
    } else if (std::strncmp(arg, "--save-config=", 14) == 0) {
      save_config_path = arg + 14;
    } else if (std::strcmp(arg, "--dry-run") == 0) {
      dry_run = true;
    } else if (std::strcmp(arg, "--json") == 0) {
      as_json = true;
    } else if (std::strncmp(arg, "--svg=", 6) == 0) {
      svg_prefix = arg + 6;
    } else {
      return Usage(argv[0]);
    }
  }

  // --set overrides reuse the config parser: each KEY=VALUE is one line.
  for (const std::string& kv : overrides) {
    // Re-serialize, append the override, re-parse: keeps one source of truth
    // for key names and validation.
    auto patched = core::ParseConfig(core::FormatConfig(config) + "\n" + kv + "\n");
    if (!patched.ok()) {
      std::fprintf(stderr, "error in --set '%s': %s\n", kv.c_str(),
                   patched.status().ToString().c_str());
      return 1;
    }
    config = patched.ValueOrDie();
  }

  if (!save_config_path.empty()) {
    const Status st = core::SaveConfig(config, save_config_path);
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote config to %s\n", save_config_path.c_str());
  }
  if (dry_run) {
    std::fputs(core::FormatConfig(config).c_str(), stdout);
    return 0;
  }

  auto result = core::RunExperiment(config, buckets);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  const core::ExperimentResult& r = result.ValueOrDie();

  if (as_json) {
    std::printf("%s\n", core::ResultToJson(r).c_str());
  } else {
    std::printf("%s: %llu queries, seed %llu\n", r.label.c_str(),
                static_cast<unsigned long long>(r.summary.num_queries),
                static_cast<unsigned long long>(config.seed));
    std::printf("  success rate       %.2f%%\n", r.summary.success_rate * 100);
    std::printf("  search traffic     %.1f msgs/query (%.0f bytes/query)\n",
                r.summary.msgs_per_query, r.summary.bytes_per_query);
    std::printf("  download distance  %.1f ms RTT\n", r.summary.avg_download_ms);
    std::printf("  same-locality DLs  %.1f%%\n", r.summary.loc_match_rate * 100);
    std::printf("  cache-served hits  %.1f%%\n", r.summary.cache_answer_share * 100);
    if (r.summary.bloom_update_msgs > 0) {
      std::printf("  bloom maintenance  %llu msgs / %llu bytes\n",
                  static_cast<unsigned long long>(r.summary.bloom_update_msgs),
                  static_cast<unsigned long long>(r.summary.bloom_update_bytes));
    }
    if (r.summary.churn_events > 0) {
      std::printf("  churn              %llu events, %llu stale failures\n",
                  static_cast<unsigned long long>(r.summary.churn_events),
                  static_cast<unsigned long long>(r.summary.stale_failures));
    }
  }

  if (!svg_prefix.empty()) {
    const std::vector<metrics::LabeledSeries> series{{r.label, r.series}};
    struct Chart {
      metrics::Field field;
      const char* suffix;
      const char* title;
      const char* y_label;
    };
    const Chart charts[] = {
        {metrics::Field::kSuccessRate, "success", "Success rate", "fraction"},
        {metrics::Field::kMsgsPerQuery, "traffic", "Search traffic",
         "messages per query"},
        {metrics::Field::kDownloadMs, "distance", "Download distance", "ms RTT"},
    };
    for (const Chart& chart : charts) {
      metrics::SvgChartOptions options;
      options.y_label = chart.y_label;
      const std::string path = svg_prefix + "-" + chart.suffix + ".svg";
      const Status st =
          metrics::WriteSvgChart(series, chart.field, chart.title, options, path);
      if (!st.ok()) {
        std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
        return 1;
      }
      std::fprintf(stderr, "wrote %s\n", path.c_str());
    }
  }
  return 0;
}
