// Quickstart: run one Locaware experiment end to end and read the results.
//
// Build:  cmake -B build -G Ninja && cmake --build build
// Run:    ./build/examples/quickstart
//
// This is the smallest useful program against the public API:
//   1. pick a protocol and get the paper's §5.1 configuration for it,
//   2. shrink it so the demo finishes instantly,
//   3. run, then read the summary and the per-bucket series.
#include <cstdio>

#include "core/experiment.h"

int main() {
  using namespace locaware;

  // 1. The paper's configuration for the Locaware protocol. MakePaperConfig
  // fills in every §5.1 parameter; you only override what you want to change.
  core::ExperimentConfig config =
      core::MakePaperConfig(core::ProtocolKind::kLocaware, /*num_queries=*/1000);

  // 2. Scale down for an instant demo (the full 1000-peer setup works too,
  // it just takes a few seconds).
  config.num_peers = 300;
  config.underlay.num_routers = 80;
  config.catalog.num_files = 900;
  config.catalog.keyword_pool_size = 2700;
  config.workload.query_rate_per_peer_s = 0.01;
  config.seed = 2026;

  // 3. Run. RunExperiment returns Result<...>: check ok() before using.
  auto result = core::RunExperiment(config, /*num_buckets=*/5);
  if (!result.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const core::ExperimentResult& r = result.ValueOrDie();

  std::printf("protocol          : %s\n", r.label.c_str());
  std::printf("queries           : %llu\n",
              static_cast<unsigned long long>(r.summary.num_queries));
  std::printf("success rate      : %.1f%%\n", r.summary.success_rate * 100);
  std::printf("search traffic    : %.1f messages/query\n", r.summary.msgs_per_query);
  std::printf("download distance : %.1f ms RTT\n", r.summary.avg_download_ms);
  std::printf("same-locality DLs : %.1f%%\n", r.summary.loc_match_rate * 100);
  std::printf("cache-served hits : %.1f%%\n", r.summary.cache_answer_share * 100);
  std::printf("bloom maintenance : %llu msgs, %llu bytes\n",
              static_cast<unsigned long long>(r.summary.bloom_update_msgs),
              static_cast<unsigned long long>(r.summary.bloom_update_bytes));

  std::printf("\nwarm-up trend (x = queries so far):\n");
  std::printf("%10s %10s %12s %14s\n", "queries", "success", "msgs/query",
              "download ms");
  for (const auto& point : r.series) {
    std::printf("%10llu %9.1f%% %12.1f %14.1f\n",
                static_cast<unsigned long long>(point.queries_end),
                point.success_rate * 100, point.msgs_per_query,
                point.avg_download_ms);
  }
  std::printf("\nNotice the download distance falling as caches warm up — the\n"
              "paper's Figure 2 effect in miniature.\n");
  return 0;
}
