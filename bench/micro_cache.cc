// Microbenchmarks for the response index: insertion with eviction pressure
// and the keyword-containment lookups every visited node performs.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "cache/response_index.h"

namespace {

using locaware::cache::EvictionPolicy;
using locaware::cache::ProviderEntry;
using locaware::cache::ResponseIndex;
using locaware::cache::ResponseIndexConfig;

struct Corpus {
  std::vector<std::string> filenames;
  std::vector<std::vector<std::string>> keywords;
};

Corpus MakeCorpus(size_t n) {
  Corpus c;
  for (size_t i = 0; i < n; ++i) {
    std::vector<std::string> kws{"alpha" + std::to_string(i % 97),
                                 "beta" + std::to_string(i % 31),
                                 "gamma" + std::to_string(i)};
    c.filenames.push_back(kws[0] + " " + kws[1] + " " + kws[2]);
    c.keywords.push_back(std::move(kws));
  }
  return c;
}

void BM_AddProviderWithEviction(benchmark::State& state) {
  const Corpus corpus = MakeCorpus(1024);
  ResponseIndexConfig cfg;
  cfg.max_filenames = 50;  // paper-sized: constant eviction pressure
  cfg.max_providers_per_file = 8;
  cfg.eviction = static_cast<EvictionPolicy>(state.range(0));
  ResponseIndex ri(cfg);
  size_t i = 0;
  locaware::sim::SimTime now = 0;
  for (auto _ : state) {
    const size_t f = i++ & 1023;
    ri.AddProvider(corpus.filenames[f], corpus.keywords[f],
                   ProviderEntry{static_cast<uint32_t>(i % 1000), 0, 0}, now++);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AddProviderWithEviction)
    ->Arg(static_cast<int>(EvictionPolicy::kLru))
    ->Arg(static_cast<int>(EvictionPolicy::kFifo))
    ->Arg(static_cast<int>(EvictionPolicy::kRandom));

void BM_LookupByKeywords(benchmark::State& state) {
  // A full 50-filename index scanned with a 2-keyword query — the per-node
  // cost a query pays at every hop.
  const Corpus corpus = MakeCorpus(50);
  ResponseIndexConfig cfg;
  cfg.max_filenames = 50;
  ResponseIndex ri(cfg);
  for (size_t f = 0; f < 50; ++f) {
    ri.AddProvider(corpus.filenames[f], corpus.keywords[f], ProviderEntry{1, 0, 0}, 0);
  }
  size_t i = 0;
  for (auto _ : state) {
    const size_t f = i++ % 50;
    auto hits = ri.LookupByKeywords(
        {corpus.keywords[f][0], corpus.keywords[f][2]}, 1);
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LookupByKeywords);

void BM_LookupMiss(benchmark::State& state) {
  const Corpus corpus = MakeCorpus(50);
  ResponseIndexConfig cfg;
  cfg.max_filenames = 50;
  ResponseIndex ri(cfg);
  for (size_t f = 0; f < 50; ++f) {
    ri.AddProvider(corpus.filenames[f], corpus.keywords[f], ProviderEntry{1, 0, 0}, 0);
  }
  const std::vector<std::string> absent{"nosuchword"};
  for (auto _ : state) {
    auto hits = ri.LookupByKeywords(absent, 1);
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LookupMiss);

void BM_ProviderRefresh(benchmark::State& state) {
  // Locaware constantly refreshes providers of hot files (§4.1.2); measure
  // the move-to-front path.
  const Corpus corpus = MakeCorpus(1);
  ResponseIndexConfig cfg;
  cfg.max_providers_per_file = 8;
  ResponseIndex ri(cfg);
  locaware::sim::SimTime now = 0;
  for (uint32_t p = 0; p < 8; ++p) {
    ri.AddProvider(corpus.filenames[0], corpus.keywords[0], ProviderEntry{p, 0, 0},
                   now++);
  }
  uint32_t p = 0;
  for (auto _ : state) {
    ri.AddProvider(corpus.filenames[0], corpus.keywords[0],
                   ProviderEntry{p++ & 7, 0, 0}, now++);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProviderRefresh);

void BM_ExpireStaleSweep(benchmark::State& state) {
  const Corpus corpus = MakeCorpus(50);
  ResponseIndexConfig cfg;
  cfg.max_filenames = 50;
  cfg.entry_ttl = 1000;
  for (auto _ : state) {
    state.PauseTiming();
    ResponseIndex ri(cfg);
    for (size_t f = 0; f < 50; ++f) {
      ri.AddProvider(corpus.filenames[f], corpus.keywords[f], ProviderEntry{1, 0, 0},
                     0);
    }
    state.ResumeTiming();
    auto removed = ri.ExpireStale(5000);
    benchmark::DoNotOptimize(removed);
  }
}
BENCHMARK(BM_ExpireStaleSweep);

}  // namespace
