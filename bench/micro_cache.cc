// Microbenchmarks for the response index: insertion with eviction pressure
// and the keyword-containment lookups every visited node performs. All on
// the id plane — see bench/micro_intern.cc for the string-vs-id comparison.
#include <benchmark/benchmark.h>

#include <vector>

#include "cache/response_index.h"

namespace {

using locaware::FileId;
using locaware::KeywordId;
using locaware::cache::EvictionPolicy;
using locaware::cache::ProviderEntry;
using locaware::cache::ResponseIndex;
using locaware::cache::ResponseIndexConfig;

struct Corpus {
  std::vector<FileId> files;
  std::vector<std::vector<KeywordId>> keywords;  // sorted ascending
};

// Mirrors the old string corpus ("alpha<i%97> beta<i%31> gamma<i>"): a hot
// shared id space, a mid-frequency space, and a unique id per file.
Corpus MakeCorpus(size_t n) {
  Corpus c;
  for (size_t i = 0; i < n; ++i) {
    c.files.push_back(static_cast<FileId>(i));
    std::vector<KeywordId> kws{static_cast<KeywordId>(i % 97),
                               static_cast<KeywordId>(100 + i % 31),
                               static_cast<KeywordId>(200 + i)};
    c.keywords.push_back(std::move(kws));
  }
  return c;
}

void BM_AddProviderWithEviction(benchmark::State& state) {
  const Corpus corpus = MakeCorpus(1024);
  ResponseIndexConfig cfg;
  cfg.max_filenames = 50;  // paper-sized: constant eviction pressure
  cfg.max_providers_per_file = 8;
  cfg.eviction = static_cast<EvictionPolicy>(state.range(0));
  ResponseIndex ri(cfg);
  size_t i = 0;
  locaware::sim::SimTime now = 0;
  for (auto _ : state) {
    const size_t f = i++ & 1023;
    ri.AddProvider(corpus.files[f], corpus.keywords[f],
                   ProviderEntry{static_cast<uint32_t>(i % 1000), 0, 0}, now++);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AddProviderWithEviction)
    ->Arg(static_cast<int>(EvictionPolicy::kLru))
    ->Arg(static_cast<int>(EvictionPolicy::kFifo))
    ->Arg(static_cast<int>(EvictionPolicy::kRandom));

void BM_LookupByKeywords(benchmark::State& state) {
  // A full 50-file index probed with a 2-keyword query — the per-node cost a
  // query pays at every hop.
  const Corpus corpus = MakeCorpus(50);
  ResponseIndexConfig cfg;
  cfg.max_filenames = 50;
  ResponseIndex ri(cfg);
  for (size_t f = 0; f < 50; ++f) {
    ri.AddProvider(corpus.files[f], corpus.keywords[f], ProviderEntry{1, 0, 0}, 0);
  }
  size_t i = 0;
  for (auto _ : state) {
    const size_t f = i++ % 50;
    auto hits = ri.LookupByKeywords(
        {corpus.keywords[f][0], corpus.keywords[f][2]}, 1);
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LookupByKeywords);

void BM_LookupMiss(benchmark::State& state) {
  const Corpus corpus = MakeCorpus(50);
  ResponseIndexConfig cfg;
  cfg.max_filenames = 50;
  ResponseIndex ri(cfg);
  for (size_t f = 0; f < 50; ++f) {
    ri.AddProvider(corpus.files[f], corpus.keywords[f], ProviderEntry{1, 0, 0}, 0);
  }
  const std::vector<KeywordId> absent{90000};
  for (auto _ : state) {
    auto hits = ri.LookupByKeywords(absent, 1);
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LookupMiss);

void BM_ProviderRefresh(benchmark::State& state) {
  // Locaware constantly refreshes providers of hot files (§4.1.2); measure
  // the move-to-front path.
  const Corpus corpus = MakeCorpus(1);
  ResponseIndexConfig cfg;
  cfg.max_providers_per_file = 8;
  ResponseIndex ri(cfg);
  locaware::sim::SimTime now = 0;
  for (uint32_t p = 0; p < 8; ++p) {
    ri.AddProvider(corpus.files[0], corpus.keywords[0], ProviderEntry{p, 0, 0},
                   now++);
  }
  uint32_t p = 0;
  for (auto _ : state) {
    ri.AddProvider(corpus.files[0], corpus.keywords[0],
                   ProviderEntry{p++ & 7, 0, 0}, now++);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProviderRefresh);

void BM_ExpireStaleSweep(benchmark::State& state) {
  const Corpus corpus = MakeCorpus(50);
  ResponseIndexConfig cfg;
  cfg.max_filenames = 50;
  cfg.entry_ttl = 1000;
  for (auto _ : state) {
    state.PauseTiming();
    ResponseIndex ri(cfg);
    for (size_t f = 0; f < 50; ++f) {
      ri.AddProvider(corpus.files[f], corpus.keywords[f], ProviderEntry{1, 0, 0},
                     0);
    }
    state.ResumeTiming();
    auto removed = ri.ExpireStale(5000);
    benchmark::DoNotOptimize(removed);
  }
}
BENCHMARK(BM_ExpireStaleSweep);

}  // namespace
