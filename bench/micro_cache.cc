// Microbenchmarks for the response index: insertion with eviction pressure
// and the keyword-containment lookups every visited node performs. All on
// the id plane — see bench/micro_intern.cc for the string-vs-id comparison.
//
// The index's per-entry lists (keywords, providers, postings) live in
// SmallVectors with inline capacity, so steady-state churn should not touch
// the allocator at all. Every benchmark therefore reports an `allocs/op`
// counter next to its time: the small-vector win is that number pinned at
// ~0 on the hot paths (the string/vector era paid several per insert).
#include <benchmark/benchmark.h>

#include <cstddef>
#include <new>
#include <vector>

#include "cache/response_index.h"

// --- allocation accounting ---------------------------------------------------
// Bench-binary-wide operator new/delete overrides with a thread-local
// counter. Only deltas around measured regions are reported, so the
// benchmark harness's own allocations outside the loop do not pollute the
// numbers.
namespace {
thread_local uint64_t g_alloc_count = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace {

using locaware::FileId;
using locaware::KeywordId;
using locaware::cache::EvictionPolicy;
using locaware::cache::ProviderEntry;
using locaware::cache::ResponseIndex;
using locaware::cache::ResponseIndexConfig;

struct Corpus {
  std::vector<FileId> files;
  std::vector<std::vector<KeywordId>> keywords;  // sorted ascending
};

// Mirrors the old string corpus ("alpha<i%97> beta<i%31> gamma<i>"): a hot
// shared id space, a mid-frequency space, and a unique id per file.
Corpus MakeCorpus(size_t n) {
  Corpus c;
  for (size_t i = 0; i < n; ++i) {
    c.files.push_back(static_cast<FileId>(i));
    std::vector<KeywordId> kws{static_cast<KeywordId>(i % 97),
                               static_cast<KeywordId>(100 + i % 31),
                               static_cast<KeywordId>(200 + i)};
    c.keywords.push_back(std::move(kws));
  }
  return c;
}

/// Attaches the allocations-per-iteration counter for the measured region.
void ReportAllocs(benchmark::State& state, uint64_t allocs_before) {
  state.counters["allocs/op"] = benchmark::Counter(
      static_cast<double>(g_alloc_count - allocs_before),
      benchmark::Counter::kAvgIterations);
}

void BM_AddProviderWithEviction(benchmark::State& state) {
  const Corpus corpus = MakeCorpus(1024);
  ResponseIndexConfig cfg;
  cfg.max_filenames = 50;  // paper-sized: constant eviction pressure
  cfg.max_providers_per_file = 8;
  cfg.eviction = static_cast<EvictionPolicy>(state.range(0));
  ResponseIndex ri(cfg);
  size_t i = 0;
  locaware::sim::SimTime now = 0;
  const uint64_t allocs_before = g_alloc_count;
  for (auto _ : state) {
    const size_t f = i++ & 1023;
    ri.AddProvider(corpus.files[f], corpus.keywords[f],
                   ProviderEntry{static_cast<uint32_t>(i % 1000), 0, 0}, now++);
  }
  ReportAllocs(state, allocs_before);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AddProviderWithEviction)
    ->Arg(static_cast<int>(EvictionPolicy::kLru))
    ->Arg(static_cast<int>(EvictionPolicy::kFifo))
    ->Arg(static_cast<int>(EvictionPolicy::kRandom));

void BM_LookupByKeywords(benchmark::State& state) {
  // A full 50-file index probed with a 2-keyword query — the per-node cost a
  // query pays at every hop.
  const Corpus corpus = MakeCorpus(50);
  ResponseIndexConfig cfg;
  cfg.max_filenames = 50;
  ResponseIndex ri(cfg);
  for (size_t f = 0; f < 50; ++f) {
    ri.AddProvider(corpus.files[f], corpus.keywords[f], ProviderEntry{1, 0, 0}, 0);
  }
  size_t i = 0;
  const uint64_t allocs_before = g_alloc_count;
  for (auto _ : state) {
    const size_t f = i++ % 50;
    const KeywordId query[2] = {corpus.keywords[f][0], corpus.keywords[f][2]};
    auto hits = ri.LookupByKeywords(query, 1);
    benchmark::DoNotOptimize(hits);
  }
  ReportAllocs(state, allocs_before);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LookupByKeywords);

void BM_LookupMiss(benchmark::State& state) {
  const Corpus corpus = MakeCorpus(50);
  ResponseIndexConfig cfg;
  cfg.max_filenames = 50;
  ResponseIndex ri(cfg);
  for (size_t f = 0; f < 50; ++f) {
    ri.AddProvider(corpus.files[f], corpus.keywords[f], ProviderEntry{1, 0, 0}, 0);
  }
  const std::vector<KeywordId> absent{90000};
  const uint64_t allocs_before = g_alloc_count;
  for (auto _ : state) {
    auto hits = ri.LookupByKeywords(absent, 1);
    benchmark::DoNotOptimize(hits);
  }
  ReportAllocs(state, allocs_before);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LookupMiss);

void BM_ProviderRefresh(benchmark::State& state) {
  // Locaware constantly refreshes providers of hot files (§4.1.2); measure
  // the move-to-front path. Pure in-place SmallVector shuffling: 0 allocs.
  const Corpus corpus = MakeCorpus(1);
  ResponseIndexConfig cfg;
  cfg.max_providers_per_file = 8;
  ResponseIndex ri(cfg);
  locaware::sim::SimTime now = 0;
  for (uint32_t p = 0; p < 8; ++p) {
    ri.AddProvider(corpus.files[0], corpus.keywords[0], ProviderEntry{p, 0, 0},
                   now++);
  }
  uint32_t p = 0;
  const uint64_t allocs_before = g_alloc_count;
  for (auto _ : state) {
    ri.AddProvider(corpus.files[0], corpus.keywords[0],
                   ProviderEntry{p++ & 7, 0, 0}, now++);
  }
  ReportAllocs(state, allocs_before);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProviderRefresh);

void BM_ExpireStaleSweep(benchmark::State& state) {
  const Corpus corpus = MakeCorpus(50);
  ResponseIndexConfig cfg;
  cfg.max_filenames = 50;
  cfg.entry_ttl = 1000;
  for (auto _ : state) {
    state.PauseTiming();
    ResponseIndex ri(cfg);
    for (size_t f = 0; f < 50; ++f) {
      ri.AddProvider(corpus.files[f], corpus.keywords[f], ProviderEntry{1, 0, 0},
                     0);
    }
    state.ResumeTiming();
    auto removed = ri.ExpireStale(5000);
    benchmark::DoNotOptimize(removed);
  }
}
BENCHMARK(BM_ExpireStaleSweep);

void BM_SteadyStateChurn(benchmark::State& state) {
  // The engine's actual per-node life: a full index absorbing inserts (with
  // eviction), provider refreshes, and containment lookups in a fixed ratio.
  // This is the lever's acceptance number — with inline posting/provider/
  // keyword storage the mixed path settles near 0 allocs/op (the residual is
  // the Hit vector a successful lookup returns).
  const Corpus corpus = MakeCorpus(1024);
  ResponseIndexConfig cfg;
  cfg.max_filenames = 50;
  cfg.max_providers_per_file = 8;
  ResponseIndex ri(cfg);
  for (size_t f = 0; f < 50; ++f) {
    ri.AddProvider(corpus.files[f], corpus.keywords[f], ProviderEntry{1, 0, 0}, 0);
  }
  size_t i = 0;
  locaware::sim::SimTime now = 0;
  const uint64_t allocs_before = g_alloc_count;
  for (auto _ : state) {
    const size_t f = i & 1023;
    // 3 parts insert/refresh churn to 1 part lookup, like a visited node
    // that caches passing responses and answers the occasional query.
    if ((i & 3) != 3) {
      ri.AddProvider(corpus.files[f], corpus.keywords[f],
                     ProviderEntry{static_cast<uint32_t>(i % 1000), 0, 0}, now++);
    } else {
      const KeywordId query[2] = {corpus.keywords[f][0], corpus.keywords[f][1]};
      auto hits = ri.LookupByKeywords(query, now);
      benchmark::DoNotOptimize(hits);
    }
    ++i;
  }
  ReportAllocs(state, allocs_before);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SteadyStateChurn);

}  // namespace
