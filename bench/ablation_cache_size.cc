// Ablation: response-index capacity and provider-list depth.
//
// §4.1.2: "Caching multiple indexes per file may lead to an extra storage
// requirement. However, each peer can control its cache size in function of
// its storage capacity." This bench sweeps the filename capacity for the
// three caching systems (showing where Dicas-Keys' duplicated placement
// starts paying rent) and the providers-per-file bound for Locaware.
#include <cstdio>
#include <future>
#include <vector>

#include "core/experiment.h"

namespace {

using namespace locaware;

std::string RunCell(core::ProtocolKind kind, size_t capacity, size_t providers,
                    uint64_t queries) {
  core::ExperimentConfig cfg = core::MakePaperConfig(kind, queries, 42);
  cfg.params.ri.max_filenames = capacity;
  if (providers > 0) cfg.params.ri.max_providers_per_file = providers;
  auto r = std::move(core::RunExperiment(cfg, 4)).ValueOrDie();
  char buf[200];
  std::snprintf(buf, sizeof(buf), "%-12s %8zu %10zu %9.1f%% %10.1f %12.1f %9.1f%%",
                r.label.c_str(), capacity,
                providers > 0 ? providers : cfg.params.ri.max_providers_per_file,
                r.summary.success_rate * 100, r.summary.msgs_per_query,
                r.summary.avg_download_ms, r.summary.cache_answer_share * 100);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t queries =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2500;

  std::printf("== Ablation: response-index capacity (%llu queries) ==\n\n",
              static_cast<unsigned long long>(queries));
  std::printf("%-12s %8s %10s %10s %10s %12s %10s\n", "protocol", "capacity",
              "providers", "success", "msgs/q", "download ms", "cache-hit");

  std::vector<std::future<std::string>> rows;
  for (core::ProtocolKind kind :
       {core::ProtocolKind::kDicas, core::ProtocolKind::kDicasKeys,
        core::ProtocolKind::kLocaware}) {
    for (size_t capacity : {3u, 10u, 50u}) {
      rows.push_back(std::async(std::launch::async, RunCell, kind, capacity,
                                size_t{0}, queries));
    }
  }
  // Locaware's providers-per-file depth at the paper capacity.
  for (size_t providers : {1u, 2u, 4u, 8u}) {
    rows.push_back(std::async(std::launch::async, RunCell,
                              core::ProtocolKind::kLocaware, size_t{50}, providers,
                              queries));
  }
  for (auto& row : rows) std::printf("%s\n", row.get().c_str());

  std::printf(
      "\nreading guide: at the paper's response volume per-peer caches stay\n"
      "far from full, so capacity barely moves success — which is exactly why\n"
      "Dicas-Keys' duplicated placement is not punished at headline scale\n"
      "(see EXPERIMENTS.md). Locaware's providers-per-file depth is what buys\n"
      "its shorter download distance.\n");
  return 0;
}
