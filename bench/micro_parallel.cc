// Microbenchmarks for the sharded parallel engine.
//
// BM_ShardedSimulatorStorm isolates the simulator: a deterministic message
// storm over 10k sources, measuring raw events/sec against the shard count
// (barrier + mailbox overhead vs multi-core headroom). BM_EngineSharded runs
// the full Dicas protocol on a 10k-peer overlay — the acceptance workload for
// the ">= 2x wall-clock at 4 shards on a multi-core host" target. Single-core
// machines will show the barrier overhead instead; the interesting number is
// always the ratio between the /shards:1 and /shards:N rows on the same host.
//
// Two scenarios exercise the topology-aware scheduler:
//  * BM_ShardedSimulatorClusteredLocality — shards hold latency clusters
//    (cheap intra-shard traffic, 100 ms cross-shard links). The per-pair
//    lookahead matrix lets every shard run ~100 ms windows where the scalar
//    global-min bound forces ~2 ms ones: compare the `windows` counter (and
//    events/s) between the /matrix:0 and /matrix:1 rows.
//  * BM_ShardedSimulatorSkewedStorm — half the load lands on shard 0, eight
//    shards over two workers. With stealing off, shard 0's home worker also
//    owns three light shards while the other worker parks at the barrier;
//    with stealing on the idle worker takes those shards over. Compare
//    `idle_ns/window` (and steals/window) between /steal:0 and /steal:1.
//  * BM_EngineSharded/shards:8 — the same comparison end-to-end: the
//    /clustered:1 row swaps the modulo peer → shard map for the
//    locality-clustered ShardPlacement; compare `windows`, `events/s` and
//    `idle_ns/window` against /clustered:0 at equal `msgs`.
//
// Determinism note: the engine rows also serve as a cheap invariance probe —
// every shard count reports an identical `msgs` counter, because sharding
// must never change results.
//
// Million-peer data plane rows:
//  * BM_EngineScale — the full engine at 100k peers (1000-router underlay,
//    shard-local arenas, pre-reserved event queues), reporting events/s and
//    rss_kb/peer (VmRSS delta across Create+Run). Set LOCAWARE_BENCH_1M=1 to
//    also register the 1,000,000-peer row (minutes of wall clock — local
//    runs only, never CI).
//  * BM_TraceLoad — text vs binary trace parsing over the same 200k-query
//    workload; the `speedup` counter is the headline binary-format number.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <new>
#include <string>

#include "catalog/file_catalog.h"
#include "catalog/workload.h"
#include "common/rng.h"
#include "core/engine.h"
#include "core/experiment.h"
#include "sim/sharded_simulator.h"
#include "sim/sim_time.h"

// --- allocation accounting ---------------------------------------------------
// Bench-binary-wide operator new/delete overrides (micro_cache idiom), but
// with an atomic counter: the sharded engine's worker threads allocate too,
// and the engine rows report allocs per *event* across the whole process.
namespace {
std::atomic<uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace locaware;

// Resident set size in bytes from /proc/self/status, 0 where unavailable
// (non-Linux). Deltas around Create+Run give per-scenario peak growth even
// though the process-wide VmHWM accumulates across benchmarks.
uint64_t CurrentRssBytes() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      return std::strtoull(line.c_str() + 6, nullptr, 10) * 1024;
    }
  }
  return 0;
}

void BM_ShardedSimulatorStorm(benchmark::State& state) {
  const uint32_t shards = static_cast<uint32_t>(state.range(0));
  constexpr uint32_t kSources = 10000;
  constexpr sim::SimTime kLook = sim::FromMs(5);
  constexpr int kRounds = 20;
  uint64_t events = 0;
  for (auto _ : state) {
    sim::ShardedSimulatorConfig cfg;
    cfg.num_shards = shards;
    cfg.lookahead = kLook;
    cfg.num_sources = kSources;
    sim::ShardedSimulator sim(cfg);
    // Each source keeps one event outstanding; reserving that up front makes
    // storm startup allocation-free (the queues never regrow mid-run).
    sim.ReserveEvents(kSources / shards + 1024);
    // Each source bounces a message to a pseudo-random partner every
    // lookahead: the worst case for window synchronization (every window
    // holds work for every shard, every hop may cross shards).
    std::function<void(uint32_t, int)> hop = [&](uint32_t src, int round) {
      if (round >= kRounds) return;
      const uint32_t dst = (src * 2654435761u + 1) % kSources;
      sim.ScheduleAt(dst % shards, src, sim.Now() + kLook,
                     [&hop, dst, round] { hop(dst, round + 1); });
    };
    for (uint32_t s = 0; s < kSources; ++s) {
      sim.ScheduleAt(s % shards, s, 0, [&hop, s] { hop(s, 0); });
    }
    sim.Run();
    events += sim.executed_count();
  }
  state.counters["events/s"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ShardedSimulatorStorm)
    ->ArgName("shards")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Locality-clustered fleet: intra-shard chatter every 1 ms, cross-shard
// links all >= 100 ms (the Locaware picture — tight groups, long inter-group
// RTTs). The scalar row uses the 2 ms global-min bound such a network would
// yield (its closest peer pair is intra-shard); the matrix row gives every
// shard pair its true 100 ms bound. Identical event streams — only the
// window schedule changes.
void BM_ShardedSimulatorClusteredLocality(benchmark::State& state) {
  const bool use_matrix = state.range(0) != 0;
  constexpr uint32_t kShards = 4;
  constexpr uint32_t kSourcesPerShard = 64;
  constexpr sim::SimTime kIntraStep = sim::FromMs(1);
  constexpr sim::SimTime kCrossRtt = sim::FromMs(100);
  constexpr sim::SimTime kScalarLook = sim::FromMs(2);
  constexpr int kRounds = 400;
  uint64_t events = 0;
  uint64_t windows = 0;
  for (auto _ : state) {
    sim::ShardedSimulatorConfig cfg;
    cfg.num_shards = kShards;
    cfg.lookahead = kScalarLook;
    if (use_matrix) {
      cfg.lookahead_matrix.assign(kShards * kShards, kCrossRtt);
    }
    cfg.num_sources = kShards * kSourcesPerShard;
    sim::ShardedSimulator sim(cfg);
    // Up to two outstanding events per source (tick chain + cross ping).
    sim.ReserveEvents(2 * kSourcesPerShard + 1024);
    // Every source ticks a local chain each ms and pings the next cluster
    // once every 50 rounds, at the cross-link latency.
    std::function<void(uint32_t, int)> tick = [&](uint32_t src, int round) {
      if (round >= kRounds) return;
      const uint32_t shard = src % kShards;
      sim.ScheduleAt(shard, src, sim.Now() + kIntraStep,
                     [&tick, src, round] { tick(src, round + 1); });
      if (round % 50 == 49) {
        const uint32_t peer = (src + 1) % (kShards * kSourcesPerShard);
        sim.ScheduleAt(peer % kShards, src, sim.Now() + kCrossRtt, [] {});
      }
    };
    for (uint32_t s = 0; s < kShards * kSourcesPerShard; ++s) {
      sim.ScheduleAt(s % kShards, s, 0, [&tick, s] { tick(s, 0); });
    }
    sim.Run();
    events += sim.executed_count();
    windows += sim.windows();
  }
  state.counters["events/s"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["windows"] = benchmark::Counter(
      static_cast<double>(windows), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ShardedSimulatorClusteredLocality)
    ->ArgName("matrix")
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Skewed fleet: 8 shards, 2 workers, half the sources hash to shard 0. The
// steal:0 row statically binds home blocks (worker 0 owns the hot shard plus
// three light ones); the steal:1 row lets the other worker take the light
// shards over once its own block drains. Event order — and therefore every
// simulation result — is identical in both rows; only `idle_ns/window` and
// `steals/window` move.
void BM_ShardedSimulatorSkewedStorm(benchmark::State& state) {
  const bool steal = state.range(0) != 0;
  constexpr uint32_t kShards = 8;
  constexpr uint32_t kWorkers = 2;
  constexpr uint32_t kSources = 4096;
  constexpr sim::SimTime kLook = sim::FromMs(5);
  constexpr int kRounds = 30;
  const auto shard_of = [](uint32_t src) -> uint32_t {
    return (src % 16 < 8) ? 0 : (src % (kShards - 1)) + 1;
  };
  uint64_t events = 0;
  uint64_t windows = 0;
  uint64_t steals = 0;
  uint64_t idle_ns = 0;
  for (auto _ : state) {
    sim::ShardedSimulatorConfig cfg;
    cfg.num_shards = kShards;
    cfg.num_workers = kWorkers;
    cfg.work_stealing = steal;
    cfg.lookahead = kLook;
    cfg.num_sources = kSources;
    sim::ShardedSimulator sim(cfg);
    // Half the sources hash to shard 0, so size every queue for the hot one.
    sim.ReserveEvents(kSources / 2 + 1024);
    std::function<void(uint32_t, int)> hop = [&](uint32_t src, int round) {
      if (round >= kRounds) return;
      const uint32_t dst = (src * 2654435761u + 1) % kSources;
      sim.ScheduleAt(shard_of(dst), src, sim.Now() + kLook,
                     [&hop, dst, round] { hop(dst, round + 1); });
    };
    for (uint32_t s = 0; s < kSources; ++s) {
      sim.ScheduleAt(shard_of(s), s, 0, [&hop, s] { hop(s, 0); });
    }
    sim.Run();
    events += sim.executed_count();
    const sim::SchedulerStats stats = sim.stats();
    windows += stats.windows;
    steals += stats.steals;
    idle_ns += stats.idle_ns;
  }
  state.counters["events/s"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["steals/window"] =
      windows == 0 ? 0.0 : static_cast<double>(steals) / static_cast<double>(windows);
  state.counters["idle_ns/window"] =
      windows == 0 ? 0.0
                   : static_cast<double>(idle_ns) / static_cast<double>(windows);
}
BENCHMARK(BM_ShardedSimulatorSkewedStorm)
    ->ArgName("steal")
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// The /clustered:1 rows swap the peer → shard map from the modulo partition
// to the locality-clustered placement over the same geometric underlay — the
// real shard_of, no synthetic trace remap. Modulo spreads all 400 routers
// across every shard, collapsing the lookahead matrix to the scalar floor;
// clustering hands each shard a spatially tight router set, so the acceptance
// comparison is the shards:8 pair: clustered must run strictly fewer windows
// and more events/s than modulo while reporting the identical `msgs`.
void BM_EngineSharded(benchmark::State& state) {
  const uint32_t shards = static_cast<uint32_t>(state.range(0));
  const bool clustered = state.range(1) != 0;
  core::ExperimentConfig cfg =
      core::MakePaperConfig(core::ProtocolKind::kDicas, /*num_queries=*/1500,
                            /*seed=*/42);
  cfg.num_peers = 10000;
  cfg.underlay.num_routers = 400;
  cfg.catalog.num_files = 10000;
  cfg.catalog.keyword_pool_size = 30000;
  // A heavy concurrent load: ~200 q/s across the swarm keeps every
  // conservative window dense with work, which is what multi-core shards can
  // actually cash in on (sparse windows degenerate to barrier overhead).
  cfg.workload.query_rate_per_peer_s = 0.02;
  cfg.scheduler.shards = shards;
  cfg.scheduler.placement = clustered ? sim::PlacementStrategy::kClustered
                                      : sim::PlacementStrategy::kModulo;
  uint64_t events = 0;
  uint64_t msgs = 0;
  uint64_t windows = 0;
  uint64_t steals = 0;
  uint64_t idle_ns = 0;
  uint64_t run_allocs = 0;
  for (auto _ : state) {
    auto engine = std::move(core::Engine::Create(cfg)).ValueOrDie();
    const uint64_t allocs_before = g_alloc_count.load();
    engine->Run();
    run_allocs += g_alloc_count.load() - allocs_before;
    msgs = 0;
    for (const auto& r : engine->metrics().records()) msgs += r.TotalSearchMessages();
    benchmark::DoNotOptimize(msgs);
    events += engine->simulator().executed_count();
    windows = engine->metrics().scheduler_windows();
    steals = engine->metrics().scheduler_steals();
    idle_ns += engine->metrics().scheduler_idle_ns();
  }
  state.counters["events/s"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
  // Heap traffic on the event hot path (the inline-closure + SmallVector
  // payload lever's acceptance number at engine scale): allocations during
  // Run() per executed event, steady-state bookkeeping included.
  state.counters["allocs/event"] =
      events == 0 ? 0.0
                  : static_cast<double>(run_allocs) / static_cast<double>(events);
  // Identical for every shard count and placement — the determinism contract
  // in one number.
  state.counters["msgs"] = static_cast<double>(msgs);
  // Window count is deterministic per (shard count, placement) — a pure
  // function of the event schedule and the lookahead matrix; steals and idle
  // are timing-dependent like the wall clock — read them as shape, not as a
  // stable trajectory.
  state.counters["windows"] = static_cast<double>(windows);
  state.counters["steals"] = static_cast<double>(steals);
  const uint64_t total_windows =
      windows * std::max<uint64_t>(1, state.iterations());
  state.counters["idle_ns/window"] =
      windows == 0 ? 0.0
                   : static_cast<double>(idle_ns) /
                         static_cast<double>(total_windows);
}
BENCHMARK(BM_EngineSharded)
    ->ArgNames({"shards", "clustered"})
    ->Args({1, 0})
    ->Args({2, 0})
    ->Args({4, 0})
    ->Args({8, 0})
    ->Args({8, 1})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// The million-peer data plane target: full Dicas engine at scale. Routers
// grow with the swarm (~1 per 25 peers) up to the 1000 cap that bounds the
// all-pairs underlay precompute; catalog and query volume scale linearly so
// per-peer load matches the 10k scenario. Counters:
//  * events/s  — end-to-end simulator throughput, the headline number.
//  * rss_kb/peer — VmRSS growth across Create+Run divided by peers (max
//    over iterations: the first iteration faults the pages, later ones reuse
//    the allocator's retained heap, so max == per-scenario peak).
//  * msgs — determinism probe, identical for any shard/worker split.
void BM_EngineScale(benchmark::State& state) {
  const size_t peers = static_cast<size_t>(state.range(0));
  core::ExperimentConfig cfg =
      core::MakePaperConfig(core::ProtocolKind::kDicas,
                            /*num_queries=*/peers / 20, /*seed=*/42);
  cfg.num_peers = peers;
  cfg.underlay.num_routers = std::min<size_t>(1000, peers / 25);
  cfg.catalog.num_files = peers;
  // The syllable word space caps the pool at 1M; 100k keeps the paper's 3x
  // files ratio, 1M runs at 1 keyword per file's worth of pool instead.
  cfg.catalog.keyword_pool_size = std::min<size_t>(1000000, 3 * peers);
  cfg.workload.query_rate_per_peer_s = 0.02;
  cfg.scheduler.shards = 8;
  uint64_t events = 0;
  uint64_t msgs = 0;
  uint64_t rss_delta = 0;
  uint64_t run_allocs = 0;
  for (auto _ : state) {
    const uint64_t rss_before = CurrentRssBytes();
    auto engine = std::move(core::Engine::Create(cfg)).ValueOrDie();
    const uint64_t allocs_before = g_alloc_count.load();
    engine->Run();
    run_allocs += g_alloc_count.load() - allocs_before;
    const uint64_t rss_after = CurrentRssBytes();
    if (rss_after > rss_before) {
      rss_delta = std::max(rss_delta, rss_after - rss_before);
    }
    events += engine->simulator().executed_count();
    msgs = 0;
    for (const auto& r : engine->metrics().records()) msgs += r.TotalSearchMessages();
  }
  state.counters["events/s"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["allocs/event"] =
      events == 0 ? 0.0
                  : static_cast<double>(run_allocs) / static_cast<double>(events);
  state.counters["rss_kb/peer"] =
      static_cast<double>(rss_delta) / 1024.0 / static_cast<double>(peers);
  state.counters["msgs"] = static_cast<double>(msgs);
}
BENCHMARK(BM_EngineScale)
    ->ArgName("peers")
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// The 1M-peer row takes minutes and several GB; register it only when asked.
// (The installed benchmark library has no in-run skip-with-message that keeps
// JSON artifacts clean, so gating registration beats skipping inside.)
[[maybe_unused]] const bool kRegistered1M = [] {
  if (std::getenv("LOCAWARE_BENCH_1M") == nullptr) return false;
  benchmark::RegisterBenchmark("BM_EngineScale", BM_EngineScale)
      ->ArgName("peers")
      ->Arg(1000000)
      ->Unit(benchmark::kMillisecond)
      ->UseRealTime()
      ->Iterations(1);
  return true;
}();

// Text vs binary trace parsing over one 200k-query workload. Each iteration
// loads both files into fresh scratch catalogs (every keyword interned from
// scratch — the worst case for both formats); `speedup` is the per-iteration
// text/binary wall-clock ratio the ISSUE's >= 5x acceptance bar reads.
void BM_TraceLoad(benchmark::State& state) {
  const std::string text_path = "/tmp/locaware_bench_trace.trace";
  const std::string bin_path = "/tmp/locaware_bench_trace.bin";
  {
    catalog::CatalogConfig ccfg;
    ccfg.num_files = 30000;
    ccfg.keyword_pool_size = 90000;
    Rng catalog_rng(42);
    auto catalog = catalog::FileCatalog::Generate(ccfg, &catalog_rng).ValueOrDie();
    catalog::WorkloadConfig wcfg;
    wcfg.num_queries = 200000;
    Rng workload_rng(43);
    auto workload =
        catalog::QueryWorkload::Generate(wcfg, catalog, /*num_peers=*/100000,
                                         &workload_rng)
            .ValueOrDie();
    if (!workload.SaveTrace(text_path, catalog).ok() ||
        !workload.SaveBinary(bin_path, catalog).ok()) {
      std::fprintf(stderr, "BM_TraceLoad: cannot write /tmp fixtures\n");
      std::exit(1);
    }
  }
  using Clock = std::chrono::steady_clock;
  double text_ns = 0;
  double binary_ns = 0;
  uint64_t queries = 0;
  for (auto _ : state) {
    catalog::FileCatalog text_scratch;
    const auto t0 = Clock::now();
    auto from_text = catalog::QueryWorkload::LoadAuto(text_path, &text_scratch);
    const auto t1 = Clock::now();
    catalog::FileCatalog bin_scratch;
    auto from_bin = catalog::QueryWorkload::LoadAuto(bin_path, &bin_scratch);
    const auto t2 = Clock::now();
    if (!from_text.ok() || !from_bin.ok()) {
      std::fprintf(stderr, "BM_TraceLoad: load failed\n");
      std::exit(1);
    }
    queries = from_bin.ValueOrDie().queries().size();
    text_ns += std::chrono::duration<double, std::nano>(t1 - t0).count();
    binary_ns += std::chrono::duration<double, std::nano>(t2 - t1).count();
  }
  const double iters = static_cast<double>(state.iterations());
  state.counters["text_load_ms"] = text_ns / 1e6 / iters;
  state.counters["binary_load_ms"] = binary_ns / 1e6 / iters;
  state.counters["speedup"] = binary_ns == 0 ? 0.0 : text_ns / binary_ns;
  state.counters["queries"] = static_cast<double>(queries);
  std::remove(text_path.c_str());
  std::remove(bin_path.c_str());
}
BENCHMARK(BM_TraceLoad)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
