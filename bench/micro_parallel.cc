// Microbenchmarks for the sharded parallel engine.
//
// BM_ShardedSimulatorStorm isolates the simulator: a deterministic message
// storm over 10k sources, measuring raw events/sec against the shard count
// (barrier + mailbox overhead vs multi-core headroom). BM_EngineSharded runs
// the full Dicas protocol on a 10k-peer overlay — the acceptance workload for
// the ">= 2x wall-clock at 4 shards on a multi-core host" target. Single-core
// machines will show the barrier overhead instead; the interesting number is
// always the ratio between the /shards:1 and /shards:N rows on the same host.
//
// Two scenarios exercise the topology-aware scheduler:
//  * BM_ShardedSimulatorClusteredLocality — shards hold latency clusters
//    (cheap intra-shard traffic, 100 ms cross-shard links). The per-pair
//    lookahead matrix lets every shard run ~100 ms windows where the scalar
//    global-min bound forces ~2 ms ones: compare the `windows` counter (and
//    events/s) between the /matrix:0 and /matrix:1 rows.
//  * BM_ShardedSimulatorSkewedStorm — half the load lands on shard 0, eight
//    shards over two workers. With stealing off, shard 0's home worker also
//    owns three light shards while the other worker parks at the barrier;
//    with stealing on the idle worker takes those shards over. Compare
//    `idle_ns/window` (and steals/window) between /steal:0 and /steal:1.
//
// Determinism note: the engine rows also serve as a cheap invariance probe —
// every shard count reports an identical `msgs` counter, because sharding
// must never change results.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <functional>

#include "core/engine.h"
#include "core/experiment.h"
#include "sim/sharded_simulator.h"
#include "sim/sim_time.h"

namespace {

using namespace locaware;

void BM_ShardedSimulatorStorm(benchmark::State& state) {
  const uint32_t shards = static_cast<uint32_t>(state.range(0));
  constexpr uint32_t kSources = 10000;
  constexpr sim::SimTime kLook = sim::FromMs(5);
  constexpr int kRounds = 20;
  uint64_t events = 0;
  for (auto _ : state) {
    sim::ShardedSimulatorConfig cfg;
    cfg.num_shards = shards;
    cfg.lookahead = kLook;
    cfg.num_sources = kSources;
    sim::ShardedSimulator sim(cfg);
    // Each source bounces a message to a pseudo-random partner every
    // lookahead: the worst case for window synchronization (every window
    // holds work for every shard, every hop may cross shards).
    std::function<void(uint32_t, int)> hop = [&](uint32_t src, int round) {
      if (round >= kRounds) return;
      const uint32_t dst = (src * 2654435761u + 1) % kSources;
      sim.ScheduleAt(dst % shards, src, sim.Now() + kLook,
                     [&hop, dst, round] { hop(dst, round + 1); });
    };
    for (uint32_t s = 0; s < kSources; ++s) {
      sim.ScheduleAt(s % shards, s, 0, [&hop, s] { hop(s, 0); });
    }
    sim.Run();
    events += sim.executed_count();
  }
  state.counters["events/s"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ShardedSimulatorStorm)
    ->ArgName("shards")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Locality-clustered fleet: intra-shard chatter every 1 ms, cross-shard
// links all >= 100 ms (the Locaware picture — tight groups, long inter-group
// RTTs). The scalar row uses the 2 ms global-min bound such a network would
// yield (its closest peer pair is intra-shard); the matrix row gives every
// shard pair its true 100 ms bound. Identical event streams — only the
// window schedule changes.
void BM_ShardedSimulatorClusteredLocality(benchmark::State& state) {
  const bool use_matrix = state.range(0) != 0;
  constexpr uint32_t kShards = 4;
  constexpr uint32_t kSourcesPerShard = 64;
  constexpr sim::SimTime kIntraStep = sim::FromMs(1);
  constexpr sim::SimTime kCrossRtt = sim::FromMs(100);
  constexpr sim::SimTime kScalarLook = sim::FromMs(2);
  constexpr int kRounds = 400;
  uint64_t events = 0;
  uint64_t windows = 0;
  for (auto _ : state) {
    sim::ShardedSimulatorConfig cfg;
    cfg.num_shards = kShards;
    cfg.lookahead = kScalarLook;
    if (use_matrix) {
      cfg.lookahead_matrix.assign(kShards * kShards, kCrossRtt);
    }
    cfg.num_sources = kShards * kSourcesPerShard;
    sim::ShardedSimulator sim(cfg);
    // Every source ticks a local chain each ms and pings the next cluster
    // once every 50 rounds, at the cross-link latency.
    std::function<void(uint32_t, int)> tick = [&](uint32_t src, int round) {
      if (round >= kRounds) return;
      const uint32_t shard = src % kShards;
      sim.ScheduleAt(shard, src, sim.Now() + kIntraStep,
                     [&tick, src, round] { tick(src, round + 1); });
      if (round % 50 == 49) {
        const uint32_t peer = (src + 1) % (kShards * kSourcesPerShard);
        sim.ScheduleAt(peer % kShards, src, sim.Now() + kCrossRtt, [] {});
      }
    };
    for (uint32_t s = 0; s < kShards * kSourcesPerShard; ++s) {
      sim.ScheduleAt(s % kShards, s, 0, [&tick, s] { tick(s, 0); });
    }
    sim.Run();
    events += sim.executed_count();
    windows += sim.windows();
  }
  state.counters["events/s"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["windows"] = benchmark::Counter(
      static_cast<double>(windows), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ShardedSimulatorClusteredLocality)
    ->ArgName("matrix")
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Skewed fleet: 8 shards, 2 workers, half the sources hash to shard 0. The
// steal:0 row statically binds home blocks (worker 0 owns the hot shard plus
// three light ones); the steal:1 row lets the other worker take the light
// shards over once its own block drains. Event order — and therefore every
// simulation result — is identical in both rows; only `idle_ns/window` and
// `steals/window` move.
void BM_ShardedSimulatorSkewedStorm(benchmark::State& state) {
  const bool steal = state.range(0) != 0;
  constexpr uint32_t kShards = 8;
  constexpr uint32_t kWorkers = 2;
  constexpr uint32_t kSources = 4096;
  constexpr sim::SimTime kLook = sim::FromMs(5);
  constexpr int kRounds = 30;
  const auto shard_of = [](uint32_t src) -> uint32_t {
    return (src % 16 < 8) ? 0 : (src % (kShards - 1)) + 1;
  };
  uint64_t events = 0;
  uint64_t windows = 0;
  uint64_t steals = 0;
  uint64_t idle_ns = 0;
  for (auto _ : state) {
    sim::ShardedSimulatorConfig cfg;
    cfg.num_shards = kShards;
    cfg.num_workers = kWorkers;
    cfg.work_stealing = steal;
    cfg.lookahead = kLook;
    cfg.num_sources = kSources;
    sim::ShardedSimulator sim(cfg);
    std::function<void(uint32_t, int)> hop = [&](uint32_t src, int round) {
      if (round >= kRounds) return;
      const uint32_t dst = (src * 2654435761u + 1) % kSources;
      sim.ScheduleAt(shard_of(dst), src, sim.Now() + kLook,
                     [&hop, dst, round] { hop(dst, round + 1); });
    };
    for (uint32_t s = 0; s < kSources; ++s) {
      sim.ScheduleAt(shard_of(s), s, 0, [&hop, s] { hop(s, 0); });
    }
    sim.Run();
    events += sim.executed_count();
    const sim::SchedulerStats stats = sim.stats();
    windows += stats.windows;
    steals += stats.steals;
    idle_ns += stats.idle_ns;
  }
  state.counters["events/s"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["steals/window"] =
      windows == 0 ? 0.0 : static_cast<double>(steals) / static_cast<double>(windows);
  state.counters["idle_ns/window"] =
      windows == 0 ? 0.0
                   : static_cast<double>(idle_ns) / static_cast<double>(windows);
}
BENCHMARK(BM_ShardedSimulatorSkewedStorm)
    ->ArgName("steal")
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_EngineSharded(benchmark::State& state) {
  const uint32_t shards = static_cast<uint32_t>(state.range(0));
  core::ExperimentConfig cfg =
      core::MakePaperConfig(core::ProtocolKind::kDicas, /*num_queries=*/1500,
                            /*seed=*/42);
  cfg.num_peers = 10000;
  cfg.underlay.num_routers = 400;
  cfg.catalog.num_files = 10000;
  cfg.catalog.keyword_pool_size = 30000;
  // A heavy concurrent load: ~200 q/s across the swarm keeps every
  // conservative window dense with work, which is what multi-core shards can
  // actually cash in on (sparse windows degenerate to barrier overhead).
  cfg.workload.query_rate_per_peer_s = 0.02;
  cfg.shards = shards;
  uint64_t msgs = 0;
  uint64_t windows = 0;
  uint64_t steals = 0;
  for (auto _ : state) {
    auto engine = std::move(core::Engine::Create(cfg)).ValueOrDie();
    engine->Run();
    msgs = 0;
    for (const auto& r : engine->metrics().records()) msgs += r.TotalSearchMessages();
    benchmark::DoNotOptimize(msgs);
    windows = engine->metrics().scheduler_windows();
    steals = engine->metrics().scheduler_steals();
  }
  // Identical for every shard count — the determinism contract in one number.
  state.counters["msgs"] = static_cast<double>(msgs);
  // Window count is deterministic per shard count (a pure function of the
  // event schedule and the lookahead matrix); steals are timing-dependent
  // like the wall clock — read them as shape, not as a stable trajectory.
  state.counters["windows"] = static_cast<double>(windows);
  state.counters["steals"] = static_cast<double>(steals);
}
BENCHMARK(BM_EngineSharded)
    ->ArgName("shards")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
