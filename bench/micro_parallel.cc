// Microbenchmarks for the sharded parallel engine.
//
// BM_ShardedSimulatorStorm isolates the simulator: a deterministic message
// storm over 10k sources, measuring raw events/sec against the shard count
// (barrier + mailbox overhead vs multi-core headroom). BM_EngineSharded runs
// the full Dicas protocol on a 10k-peer overlay — the acceptance workload for
// the ">= 2x wall-clock at 4 shards on a multi-core host" target. Single-core
// machines will show the barrier overhead instead; the interesting number is
// always the ratio between the /shards:1 and /shards:N rows on the same host.
//
// Determinism note: the engine rows also serve as a cheap invariance probe —
// every shard count reports an identical `msgs` counter, because sharding
// must never change results.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <functional>

#include "core/engine.h"
#include "core/experiment.h"
#include "sim/sharded_simulator.h"
#include "sim/sim_time.h"

namespace {

using namespace locaware;

void BM_ShardedSimulatorStorm(benchmark::State& state) {
  const uint32_t shards = static_cast<uint32_t>(state.range(0));
  constexpr uint32_t kSources = 10000;
  constexpr sim::SimTime kLook = sim::FromMs(5);
  constexpr int kRounds = 20;
  uint64_t events = 0;
  for (auto _ : state) {
    sim::ShardedSimulatorConfig cfg;
    cfg.num_shards = shards;
    cfg.lookahead = kLook;
    cfg.num_sources = kSources;
    sim::ShardedSimulator sim(cfg);
    // Each source bounces a message to a pseudo-random partner every
    // lookahead: the worst case for window synchronization (every window
    // holds work for every shard, every hop may cross shards).
    std::function<void(uint32_t, int)> hop = [&](uint32_t src, int round) {
      if (round >= kRounds) return;
      const uint32_t dst = (src * 2654435761u + 1) % kSources;
      sim.ScheduleAt(dst % shards, src, sim.Now() + kLook,
                     [&hop, dst, round] { hop(dst, round + 1); });
    };
    for (uint32_t s = 0; s < kSources; ++s) {
      sim.ScheduleAt(s % shards, s, 0, [&hop, s] { hop(s, 0); });
    }
    sim.Run();
    events += sim.executed_count();
  }
  state.counters["events/s"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ShardedSimulatorStorm)
    ->ArgName("shards")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_EngineSharded(benchmark::State& state) {
  const uint32_t shards = static_cast<uint32_t>(state.range(0));
  core::ExperimentConfig cfg =
      core::MakePaperConfig(core::ProtocolKind::kDicas, /*num_queries=*/1500,
                            /*seed=*/42);
  cfg.num_peers = 10000;
  cfg.underlay.num_routers = 400;
  cfg.catalog.num_files = 10000;
  cfg.catalog.keyword_pool_size = 30000;
  // A heavy concurrent load: ~200 q/s across the swarm keeps every
  // conservative window dense with work, which is what multi-core shards can
  // actually cash in on (sparse windows degenerate to barrier overhead).
  cfg.workload.query_rate_per_peer_s = 0.02;
  cfg.shards = shards;
  uint64_t msgs = 0;
  for (auto _ : state) {
    auto engine = std::move(core::Engine::Create(cfg)).ValueOrDie();
    engine->Run();
    msgs = 0;
    for (const auto& r : engine->metrics().records()) msgs += r.TotalSearchMessages();
    benchmark::DoNotOptimize(msgs);
  }
  // Identical for every shard count — the determinism contract in one number.
  state.counters["msgs"] = static_cast<double>(msgs);
}
BENCHMARK(BM_EngineSharded)
    ->ArgName("shards")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
