// Microbenchmarks for the event hot path: EventQueue push/pop with
// inline-storage closures.
//
// Every simulated event passes through Push -> heap sift -> Pop -> invoke.
// With std::function envelopes, any capture past ~2 pointers paid a malloc
// on push and a free on pop — at engine scale, one allocator round-trip per
// event. EventFn (common::InlineFunction) stores the capture inside the
// queue entry, so the same cycle is allocation-free apart from the heap
// vector's amortized growth (and not even that once Reserve has run).
//
// Rows:
//  * BM_EventQueuePushPop/capture_bytes:{8,64,200} — a steady-state
//    push/pop cycle at three capture sizes spanning tiny ticks to the
//    engine's biggest (a SendResponse closure, ~208 bytes). The acceptance
//    counter is allocs/event == 0 for every row: capture size no longer
//    buys heap traffic.
//  * BM_StdFunctionEnvelope/capture_bytes:{8,64,200} — the same cycle
//    through a std::function-keyed heap, kept as the reference the inline
//    rows are read against (expect ~1 alloc/event beyond the small-object
//    threshold).
//  * BM_EventQueueBurst — 4096 pushes then 4096 pops on a Reserve()d queue,
//    the storm shape the sharded mailboxes produce at window barriers.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <new>
#include <queue>
#include <vector>

#include "sim/event_queue.h"

// --- allocation accounting ---------------------------------------------------
// Bench-binary-wide operator new/delete overrides with a thread-local
// counter; only deltas around measured regions are reported (same idiom as
// bench/micro_cache.cc).
namespace {
thread_local uint64_t g_alloc_count = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace {

using locaware::sim::EventFn;
using locaware::sim::EventQueue;
using locaware::sim::SimTime;

/// Attaches the allocations-per-iteration counter for the measured region.
void ReportAllocs(benchmark::State& state, uint64_t allocs_before) {
  state.counters["allocs/event"] = benchmark::Counter(
      static_cast<double>(g_alloc_count - allocs_before),
      benchmark::Counter::kAvgIterations);
}

/// A closure payload of exactly `Bytes` bytes, touched on invoke so the
/// capture cannot be optimized away.
template <size_t Bytes>
struct Payload {
  unsigned char bytes[Bytes];
  uint64_t* sink;
  void operator()() const { *sink += bytes[0] + bytes[Bytes - 1]; }
};

template <size_t Bytes>
void BM_EventQueuePushPop(benchmark::State& state) {
  EventQueue q;
  q.Reserve(64);
  uint64_t sink = 0;
  // A standing population of 32 events keeps the sifts realistic (depth-5
  // heap) while each iteration does one push + one pop + one invoke.
  SimTime now = 0;
  for (int i = 0; i < 32; ++i) {
    q.Push(now + 1 + (i * 7) % 32, Payload<Bytes>{{1}, &sink});
  }
  const uint64_t allocs_before = g_alloc_count;
  for (auto _ : state) {
    q.Push(now + 1 + (sink % 32), Payload<Bytes>{{1}, &sink});
    SimTime t;
    EventFn fn = q.Pop(&t);
    now = t;
    fn();
  }
  ReportAllocs(state, allocs_before);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueuePushPop<8>)->Name("BM_EventQueuePushPop/capture_bytes:8");
BENCHMARK(BM_EventQueuePushPop<64>)
    ->Name("BM_EventQueuePushPop/capture_bytes:64");
BENCHMARK(BM_EventQueuePushPop<200>)
    ->Name("BM_EventQueuePushPop/capture_bytes:200");

/// The pre-lever shape: the same (time, fn) heap but with std::function
/// envelopes, so every capture past the small-object threshold is a heap
/// node. Read the inline rows against this one.
template <size_t Bytes>
void BM_StdFunctionEnvelope(benchmark::State& state) {
  struct Entry {
    SimTime time;
    std::function<void()> fn;
    bool operator>(const Entry& other) const { return time > other.time; }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> q;
  uint64_t sink = 0;
  SimTime now = 0;
  for (int i = 0; i < 32; ++i) {
    q.push(Entry{now + 1 + (i * 7) % 32, Payload<Bytes>{{1}, &sink}});
  }
  const uint64_t allocs_before = g_alloc_count;
  for (auto _ : state) {
    q.push(Entry{now + 1 + static_cast<SimTime>(sink % 32),
                 Payload<Bytes>{{1}, &sink}});
    Entry top = std::move(const_cast<Entry&>(q.top()));
    q.pop();
    now = top.time;
    top.fn();
  }
  ReportAllocs(state, allocs_before);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StdFunctionEnvelope<8>)
    ->Name("BM_StdFunctionEnvelope/capture_bytes:8");
BENCHMARK(BM_StdFunctionEnvelope<64>)
    ->Name("BM_StdFunctionEnvelope/capture_bytes:64");
BENCHMARK(BM_StdFunctionEnvelope<200>)
    ->Name("BM_StdFunctionEnvelope/capture_bytes:200");

void BM_EventQueueBurst(benchmark::State& state) {
  constexpr int kBurst = 4096;
  uint64_t sink = 0;
  uint64_t burst_allocs = 0;
  for (auto _ : state) {
    state.PauseTiming();
    EventQueue q;
    q.Reserve(kBurst);
    const uint64_t allocs_after_reserve = g_alloc_count;
    state.ResumeTiming();
    for (int i = 0; i < kBurst; ++i) {
      q.Push((i * 2654435761u) % kBurst, Payload<64>{{1}, &sink});
    }
    SimTime t;
    while (!q.empty()) q.Pop(&t)();
    benchmark::DoNotOptimize(sink);
    burst_allocs += g_alloc_count - allocs_after_reserve;
  }
  // Allocs per *event*, measured from after Reserve: the burst itself must
  // be allocation-free.
  state.counters["allocs/event"] = benchmark::Counter(
      static_cast<double>(burst_allocs) / static_cast<double>(kBurst),
      benchmark::Counter::kAvgIterations);
  state.SetItemsProcessed(state.iterations() * kBurst);
}
BENCHMARK(BM_EventQueueBurst)->Unit(benchmark::kMicrosecond);

}  // namespace
