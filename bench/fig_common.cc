#include "fig_common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>

#include "catalog/workload.h"

#include "core/config_io.h"
#include "metrics/svg_plot.h"

namespace locaware::bench {

FigOptions ParseArgs(int argc, char** argv) {
  FigOptions options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--queries=", 10) == 0) {
      options.num_queries = std::strtoull(arg + 10, nullptr, 10);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      options.seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--buckets=", 10) == 0) {
      options.buckets = std::strtoull(arg + 10, nullptr, 10);
    } else if (std::strncmp(arg, "--shards=", 9) == 0) {
      options.shards = static_cast<uint32_t>(std::strtoul(arg + 9, nullptr, 10));
    } else if (std::strncmp(arg, "--workers=", 10) == 0) {
      options.workers = static_cast<uint32_t>(std::strtoul(arg + 10, nullptr, 10));
    } else if (std::strncmp(arg, "--steal=", 8) == 0) {
      options.steal = std::strtoul(arg + 8, nullptr, 10) != 0;
    } else if (std::strncmp(arg, "--placement=", 12) == 0) {
      auto parsed = core::ParsePlacementStrategy(arg + 12);
      if (!parsed.ok()) {
        std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
        std::exit(2);
      }
      options.placement = parsed.ValueOrDie();
    } else if (std::strncmp(arg, "--peers=", 8) == 0) {
      options.peers = std::strtoull(arg + 8, nullptr, 10);
    } else if (std::strncmp(arg, "--trace=", 8) == 0) {
      options.trace_path = arg + 8;
    } else if (std::strncmp(arg, "--svg=", 6) == 0) {
      options.svg_path = arg + 6;
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      options.json_path = arg + 7;
    } else {
      std::fprintf(stderr,
                   "unknown argument '%s'\n"
                   "usage: %s [--queries=N] [--seed=S] [--buckets=B] [--shards=K] "
                   "[--workers=W] [--steal=0|1] [--placement=modulo|clustered] "
                   "[--peers=N] [--trace=PATH] [--svg=PATH] [--json=PATH]\n",
                   arg, argv[0]);
      std::exit(2);
    }
  }
  return options;
}

std::vector<core::ExperimentResult> RunAllProtocols(
    const FigOptions& options,
    const std::function<void(core::ExperimentConfig*)>& tweak) {
  const core::ProtocolKind kinds[] = {
      core::ProtocolKind::kFlooding,
      core::ProtocolKind::kDicas,
      core::ProtocolKind::kDicasKeys,
      core::ProtocolKind::kLocaware,
  };
  // Peek the trace once so every protocol's run pre-reserves its per-shard
  // event queues for the whole storm (zero heap growth at startup).
  size_t event_hint = 0;
  if (!options.trace_path.empty()) {
    auto count = catalog::PeekTraceQueryCount(options.trace_path);
    if (!count.ok()) {
      std::fprintf(stderr, "trace %s: %s\n", options.trace_path.c_str(),
                   count.status().ToString().c_str());
      std::exit(1);
    }
    const uint32_t shards = options.shards == 0 ? 1 : options.shards;
    event_hint = static_cast<size_t>(count.ValueOrDie()) / shards + 1024;
  }
  std::vector<std::future<core::ExperimentResult>> futures;
  for (core::ProtocolKind kind : kinds) {
    futures.push_back(std::async(std::launch::async, [=] {
      core::ExperimentConfig config =
          core::MakePaperConfig(kind, options.num_queries, options.seed);
      config.scheduler.shards = options.shards;
      config.scheduler.workers = options.workers;
      config.scheduler.work_stealing = options.steal;
      config.scheduler.placement = options.placement;
      if (options.peers != 0) {
        config.num_peers = options.peers;
        // ~1 router per 25 peers keeps the locality structure meaningful;
        // the 1000 cap bounds the O(r * E log V) all-pairs precompute.
        config.underlay.num_routers =
            std::min<size_t>(1000, std::max(config.underlay.num_routers,
                                            options.peers / 25));
      }
      if (!options.trace_path.empty()) {
        config.trace_path = options.trace_path;
        config.scheduler.event_reserve_hint = event_hint;
      }
      if (tweak) tweak(&config);
      auto result = core::RunExperiment(config, options.buckets);
      if (!result.ok()) {
        std::fprintf(stderr, "experiment %s failed: %s\n",
                     core::ProtocolKindName(kind), result.status().ToString().c_str());
        std::exit(1);
      }
      return std::move(result).ValueOrDie();
    }));
  }
  std::vector<core::ExperimentResult> results;
  results.reserve(futures.size());
  for (auto& f : futures) results.push_back(f.get());
  return results;
}

std::vector<metrics::LabeledSeries> ToSeries(
    const std::vector<core::ExperimentResult>& results) {
  std::vector<metrics::LabeledSeries> series;
  series.reserve(results.size());
  for (const auto& r : results) series.push_back({r.label, r.series});
  return series;
}

void PrintHeader(const std::string& figure, const FigOptions& options) {
  std::printf("== %s ==\n", figure.c_str());
  std::printf(
      "paper setup: 1000 peers, avg degree 3, TTL 7, 3000 files, 9000 keywords,\n"
      "             Zipf queries @0.00083 q/s/peer, 4 landmarks (24 locIds)\n");
  std::printf("run: queries=%llu seed=%llu buckets=%zu",
              static_cast<unsigned long long>(options.num_queries),
              static_cast<unsigned long long>(options.seed), options.buckets);
  if (options.peers != 0) std::printf(" peers=%zu", options.peers);
  if (!options.trace_path.empty())
    std::printf(" trace=%s", options.trace_path.c_str());
  std::printf("\n\n");
}

void MaybeWriteSvg(const std::vector<metrics::LabeledSeries>& series,
                   metrics::Field field, const std::string& title,
                   const std::string& y_label, const FigOptions& options) {
  if (options.svg_path.empty()) return;
  metrics::SvgChartOptions svg_options;
  svg_options.y_label = y_label;
  const Status st =
      metrics::WriteSvgChart(series, field, title, svg_options, options.svg_path);
  if (!st.ok()) {
    std::fprintf(stderr, "svg: %s\n", st.ToString().c_str());
    return;
  }
  std::printf("wrote %s\n", options.svg_path.c_str());
}

void MaybeWriteJson(const std::vector<core::ExperimentResult>& results,
                    const FigOptions& options) {
  if (options.json_path.empty()) return;
  std::FILE* out = std::fopen(options.json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "json: cannot open %s\n", options.json_path.c_str());
    return;
  }
  std::fputs("[\n", out);
  for (size_t i = 0; i < results.size(); ++i) {
    std::fputs(core::ResultToJson(results[i]).c_str(), out);
    std::fputs(i + 1 < results.size() ? ",\n" : "\n", out);
  }
  std::fputs("]\n", out);
  std::fclose(out);
  std::printf("wrote %s\n", options.json_path.c_str());
}

void PrintSummaries(const std::vector<core::ExperimentResult>& results) {
  std::printf("\n%-12s %10s %12s %12s %10s %10s\n", "protocol", "success",
              "msgs/query", "download ms", "loc-match", "cache-hit");
  for (const auto& r : results) {
    std::printf("%-12s %9.1f%% %12.1f %12.1f %9.1f%% %9.1f%%\n", r.label.c_str(),
                r.summary.success_rate * 100.0, r.summary.msgs_per_query,
                r.summary.avg_download_ms, r.summary.loc_match_rate * 100.0,
                r.summary.cache_answer_share * 100.0);
  }
  // Scheduler shape, multi-shard runs only. Stays on stdout: windows/steals
  // depend on shard/worker counts and idle on the wall clock, so none of it
  // belongs in the byte-compared --json artifact.
  for (const auto& r : results) {
    if (r.summary.scheduler_windows == 0) continue;
    std::printf("%-12s scheduler: windows=%llu steals=%llu idle=%.1fms\n",
                r.label.c_str(),
                static_cast<unsigned long long>(r.summary.scheduler_windows),
                static_cast<unsigned long long>(r.summary.scheduler_steals),
                static_cast<double>(r.summary.scheduler_idle_ns) / 1e6);
  }
}

}  // namespace locaware::bench
