// Microbenchmarks for the Bloom-filter subsystem: the per-query cost of
// Locaware's routing checks and the per-update cost of delta gossip.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bloom/bloom_delta.h"
#include "bloom/bloom_filter.h"
#include "bloom/counting_bloom.h"

namespace {

using locaware::bloom::BloomDelta;
using locaware::bloom::BloomFilter;
using locaware::bloom::CountingBloomFilter;

std::vector<std::string> MakeKeys(size_t n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) keys.push_back("keyword" + std::to_string(i));
  return keys;
}

void BM_BloomInsert(benchmark::State& state) {
  const auto keys = MakeKeys(1024);
  BloomFilter bf(static_cast<size_t>(state.range(0)), 4);
  size_t i = 0;
  for (auto _ : state) {
    bf.Insert(keys[i++ & 1023]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomInsert)->Arg(1200)->Arg(4096)->Arg(65536);

void BM_BloomMayContain(benchmark::State& state) {
  // The hot path: a Locaware node checks each neighbor filter against every
  // query keyword. Filter filled to the paper's design point (~150 keys).
  const auto keys = MakeKeys(1024);
  BloomFilter bf(static_cast<size_t>(state.range(0)), 4);
  for (size_t i = 0; i < 150; ++i) bf.Insert(keys[i]);
  size_t i = 0;
  bool sink = false;
  for (auto _ : state) {
    sink ^= bf.MayContain(keys[i++ & 1023]);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomMayContain)->Arg(1200)->Arg(4096);

void BM_CountingInsertRemove(benchmark::State& state) {
  const auto keys = MakeKeys(1024);
  CountingBloomFilter cbf(1200, 4);
  size_t i = 0;
  for (auto _ : state) {
    const std::string& k = keys[i++ & 1023];
    cbf.Insert(k);
    cbf.Remove(k);
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_CountingInsertRemove);

void BM_DeltaComputeOneFilename(benchmark::State& state) {
  // One cached filename = 3 keywords x 4 probes: the paper's <=12 changed
  // bits. Measures ComputeDelta over the full 1200-bit vector.
  BloomFilter before(1200, 4);
  for (size_t i = 0; i < 150; ++i) before.Insert("base" + std::to_string(i));
  BloomFilter after = before;
  after.Insert("fresh-alpha");
  after.Insert("fresh-beta");
  after.Insert("fresh-gamma");
  for (auto _ : state) {
    BloomDelta delta = ComputeDelta(before, after);
    benchmark::DoNotOptimize(delta);
  }
}
BENCHMARK(BM_DeltaComputeOneFilename);

void BM_DeltaEncodeDecode(benchmark::State& state) {
  BloomFilter before(1200, 4), after(1200, 4);
  for (int i = 0; i < state.range(0); ++i) after.ToggleBit(i * 7 % 1200);
  const BloomDelta delta = ComputeDelta(before, after);
  for (auto _ : state) {
    const auto wire = EncodeDelta(delta);
    auto decoded = locaware::bloom::DecodeDelta(wire, 1200);
    benchmark::DoNotOptimize(decoded);
  }
  state.counters["wire_bytes"] =
      static_cast<double>(EncodeDelta(delta).size());
}
BENCHMARK(BM_DeltaEncodeDecode)->Arg(12)->Arg(120);

void BM_DeltaApply(benchmark::State& state) {
  BloomFilter target(1200, 4);
  BloomDelta delta;
  delta.filter_bits = 1200;
  for (int i = 0; i < 12; ++i) delta.positions.push_back(i * 97 % 1200);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ApplyDelta(delta, &target));
  }
}
BENCHMARK(BM_DeltaApply);

}  // namespace
