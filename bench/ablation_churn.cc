// Ablation: churn and index staleness (paper §4.1.2 / Markatos [11]).
//
// The headline experiments are churn-free; this bench turns on session churn
// and sweeps the index entry lifetime, reporting stale-download failures —
// the cost the paper's freshness rule ("most recent pf entries replace the
// oldest ones", short cache lifetimes) is designed to avoid.
#include <cstdio>
#include <future>
#include <vector>

#include "core/experiment.h"

int main(int argc, char** argv) {
  using namespace locaware;
  const uint64_t queries =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2500;

  std::printf("== Ablation: churn & index staleness (%llu queries) ==\n",
              static_cast<unsigned long long>(queries));
  std::printf("churn model: mean session 30 min, mean offline 10 min\n\n");
  std::printf("%-12s %-14s %10s %15s %12s %10s\n", "protocol", "entry TTL",
              "success", "stale failures", "download ms", "churns");

  struct Cell {
    core::ProtocolKind kind;
    sim::SimTime ttl;
    bool churn;
    const char* ttl_label;
  };
  const Cell cells[] = {
      {core::ProtocolKind::kLocaware, 0, false, "no churn"},
      {core::ProtocolKind::kLocaware, 0, true, "none"},
      {core::ProtocolKind::kLocaware, 10 * sim::kMinute, true, "10 min"},
      {core::ProtocolKind::kLocaware, 2 * sim::kMinute, true, "2 min"},
      {core::ProtocolKind::kDicas, 0, true, "none"},
      {core::ProtocolKind::kDicas, 10 * sim::kMinute, true, "10 min"},
  };

  std::vector<std::future<std::string>> rows;
  for (const Cell& cell : cells) {
    rows.push_back(std::async(std::launch::async, [cell, queries] {
      core::ExperimentConfig cfg = core::MakePaperConfig(cell.kind, queries, 42);
      cfg.churn.enabled = cell.churn;
      cfg.churn.mean_session_s = 1800;
      cfg.churn.mean_offline_s = 600;
      cfg.params.ri.entry_ttl = cell.ttl;
      auto r = std::move(core::RunExperiment(cfg, 4)).ValueOrDie();
      char buf[180];
      std::snprintf(buf, sizeof(buf), "%-12s %-14s %9.1f%% %15llu %12.1f %10llu",
                    r.label.c_str(), cell.ttl_label, r.summary.success_rate * 100,
                    static_cast<unsigned long long>(r.summary.stale_failures),
                    r.summary.avg_download_ms,
                    static_cast<unsigned long long>(r.summary.churn_events));
      return std::string(buf);
    }));
  }
  for (auto& row : rows) std::printf("%s\n", row.get().c_str());

  std::printf(
      "\nreading guide: under churn an unexpired index keeps offering peers\n"
      "that already left (stale failures); expiring entries trades a bit of\n"
      "hit ratio for freshness. Locaware's multi-provider records make it\n"
      "more robust than Dicas' single-provider indexes at equal lifetimes.\n");
  return 0;
}
