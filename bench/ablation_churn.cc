// Ablation: churn and index staleness (paper §4.1.2 / Markatos [11]).
//
// The headline experiments are churn-free; this bench turns on session churn
// and sweeps the index entry lifetime, reporting stale-download failures and
// the overlay-repair traffic the message-routed link handshake costs — the
// staleness/maintenance tradeoff the paper's freshness rule ("most recent pf
// entries replace the oldest ones", short cache lifetimes) navigates.
//
// Dynamic-network scenarios run on the parallel engine: --shards=K uses K
// worker shards, and the --json output is byte-identical for every K at a
// fixed seed (CI's second determinism gate diffs shards=1 vs shards=4).
#include <cstdio>
#include <future>
#include <string>
#include <vector>

#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace locaware;
  const bench::FigOptions options = bench::ParseArgs(argc, argv);
  const uint64_t queries = options.num_queries;

  std::printf("== Ablation: churn & index staleness (%llu queries) ==\n",
              static_cast<unsigned long long>(queries));
  std::printf("churn model: mean session 30 min, mean offline 10 min\n");
  std::printf("run: seed=%llu shards=%u\n\n",
              static_cast<unsigned long long>(options.seed), options.shards);
  std::printf("%-22s %-10s %8s %13s %12s %11s %8s %11s %8s\n", "cell", "TTL",
              "success", "stale fails", "stale hits", "repair msg", "rep KB",
              "download ms", "churns");

  struct Cell {
    core::ProtocolKind kind;
    sim::SimTime ttl;
    bool churn;
    const char* ttl_label;
  };
  const Cell cells[] = {
      {core::ProtocolKind::kLocaware, 0, false, "no churn"},
      {core::ProtocolKind::kLocaware, 0, true, "none"},
      {core::ProtocolKind::kLocaware, 10 * sim::kMinute, true, "10 min"},
      {core::ProtocolKind::kLocaware, 2 * sim::kMinute, true, "2 min"},
      {core::ProtocolKind::kDicas, 0, true, "none"},
      {core::ProtocolKind::kDicas, 10 * sim::kMinute, true, "10 min"},
  };

  std::vector<std::future<Result<core::ExperimentResult>>> futures;
  for (const Cell& cell : cells) {
    futures.push_back(std::async(std::launch::async, [cell, queries, &options] {
      core::ExperimentConfig cfg =
          core::MakePaperConfig(cell.kind, queries, options.seed);
      cfg.scheduler.shards = options.shards;
      cfg.scheduler.workers = options.workers;
      cfg.scheduler.work_stealing = options.steal;
      cfg.scheduler.placement = options.placement;
      cfg.churn.enabled = cell.churn;
      cfg.churn.mean_session_s = 1800;
      cfg.churn.mean_offline_s = 600;
      cfg.params.ri.entry_ttl = cell.ttl;
      cfg.label = std::string(core::ProtocolKindName(cell.kind)) +
                  (cell.churn ? " churn ttl=" : " ") + cell.ttl_label;
      return core::RunExperiment(cfg, options.buckets);
    }));
  }
  // Failures are reported from the main thread after every worker joined: an
  // exit() from inside a worker would run static destructors under the
  // siblings' still-running simulations.
  std::vector<core::ExperimentResult> results;
  results.reserve(futures.size());
  bool failed = false;
  for (auto& f : futures) {
    auto result = f.get();
    if (!result.ok()) {
      std::fprintf(stderr, "experiment failed: %s\n",
                   result.status().ToString().c_str());
      failed = true;
      continue;
    }
    results.push_back(std::move(result).ValueOrDie());
  }
  if (failed) return 1;

  for (size_t i = 0; i < results.size(); ++i) {
    const metrics::Summary& s = results[i].summary;
    std::printf("%-22s %-10s %7.1f%% %13llu %12llu %11llu %8.1f %11.1f %8llu\n",
                results[i].label.c_str(), cells[i].ttl_label,
                s.success_rate * 100,
                static_cast<unsigned long long>(s.stale_failures),
                static_cast<unsigned long long>(s.stale_provider_hits),
                static_cast<unsigned long long>(s.repair_msgs),
                static_cast<double>(s.repair_bytes) / 1024.0, s.avg_download_ms,
                static_cast<unsigned long long>(s.churn_events));
  }

  bench::MaybeWriteJson(results, options);

  std::printf(
      "\nreading guide: under churn an unexpired index keeps offering peers\n"
      "that already left (stale failures; 'stale hits' counts every departed\n"
      "provider the indexes served); expiring entries trades a bit of hit\n"
      "ratio for freshness, and 'repair' is the LinkDrop/LinkProbe/LinkAccept\n"
      "traffic that keeps the overlay wired. Locaware's multi-provider records\n"
      "make it more robust than Dicas' single-provider indexes at equal\n"
      "lifetimes.\n");
  return 0;
}
