// Analysis bench: where does index caching actually win?
//
// The paper's motivation rests on query temporal locality — "most queries
// request a few popular files" [11, 15] — so caching should pay off on the
// Zipf head and do little for the tail. This bench splits every metric by
// the popularity rank of the queried file and makes that gradient visible.
#include <cstdio>
#include <future>
#include <vector>

#include "core/experiment.h"

int main(int argc, char** argv) {
  using namespace locaware;
  const uint64_t queries =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4000;

  std::printf("== Analysis: metrics by file-popularity band (%llu queries) ==\n\n",
              static_cast<unsigned long long>(queries));

  const std::vector<uint32_t> boundaries{1, 10, 100, 1000, 3000};
  const char* band_names[] = {"rank 0 (head)", "ranks 1-9", "ranks 10-99",
                              "ranks 100-999", "ranks 1000+"};

  std::vector<std::future<core::ExperimentResult>> futures;
  for (core::ProtocolKind kind :
       {core::ProtocolKind::kFlooding, core::ProtocolKind::kDicas,
        core::ProtocolKind::kLocaware}) {
    futures.push_back(std::async(std::launch::async, [kind, queries] {
      return std::move(
                 core::RunExperiment(core::MakePaperConfig(kind, queries, 42), 4))
          .ValueOrDie();
    }));
  }

  for (auto& f : futures) {
    const core::ExperimentResult r = f.get();
    const auto bands = metrics::ByPopularity(r.records, boundaries);
    std::printf("%s:\n", r.label.c_str());
    std::printf("  %-14s %9s %10s %12s %14s\n", "band", "queries", "success",
                "cache-hit", "download ms");
    for (size_t i = 0; i < bands.size(); ++i) {
      std::printf("  %-14s %9llu %9.1f%% %11.1f%% %14.1f\n", band_names[i],
                  static_cast<unsigned long long>(bands[i].queries),
                  bands[i].success_rate * 100, bands[i].cache_answer_share * 100,
                  bands[i].avg_download_ms);
    }
    std::printf("\n");
  }

  std::printf(
      "reading guide: the head file is queried hundreds of times — caching\n"
      "protocols answer it almost entirely from indexes, while deep-tail\n"
      "files see few or no repeat queries and caching cannot help them.\n"
      "Flooding is popularity-blind: its success is flat across bands.\n"
      "This is the temporal-locality premise of the paper, measured.\n");
  return 0;
}
