// Regenerates paper Figure 3: search traffic (messages produced per query)
// as the number of queries grows, for the four systems.
//
// Paper's reported shape: "Locaware like Dicas approaches, outperforms
// flooding by 98% in terms of search traffic reduction".
#include <cstdio>

#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace locaware;
  const bench::FigOptions options = bench::ParseArgs(argc, argv);
  bench::PrintHeader("Figure 3: comparison of search traffic", options);

  const auto results = bench::RunAllProtocols(options);
  const auto series = bench::ToSeries(results);

  std::fputs(metrics::FormatFigureTable(series, metrics::Field::kMsgsPerQuery,
                                        "Search traffic (messages per query)")
                 .c_str(),
             stdout);
  std::printf("\nCSV:\n%s",
              metrics::FormatFigureCsv(series, metrics::Field::kMsgsPerQuery).c_str());
  bench::MaybeWriteSvg(series, metrics::Field::kMsgsPerQuery,
                       "Figure 3: comparison of search traffic", "messages per query",
                       options);
  bench::MaybeWriteJson(results, options);

  bench::PrintSummaries(results);
  std::printf("\nwire bytes per query (Gnutella 0.4 framing estimate):\n");
  for (const auto& r : results) {
    std::printf("  %-12s %10.0f bytes/query\n", r.label.c_str(),
                r.summary.bytes_per_query);
  }

  const double flooding = results[0].summary.msgs_per_query;
  for (int i = 1; i < 4; ++i) {
    const double reduction = (1.0 - results[i].summary.msgs_per_query / flooding) * 100.0;
    std::printf("headline: %s traffic reduction vs Flooding: %.1f%% (paper: ~98%%)\n",
                results[i].label.c_str(), reduction);
  }
  std::printf("maintenance: Locaware Bloom updates: %llu msgs, %llu bytes total\n",
              static_cast<unsigned long long>(results[3].summary.bloom_update_msgs),
              static_cast<unsigned long long>(results[3].summary.bloom_update_bytes));
  return 0;
}
