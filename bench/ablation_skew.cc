// Ablation: popularity skew and the structured/unstructured crossover (PR 10).
//
// The hybrid's premise is that unstructured index caching wins exactly where
// query temporal locality exists (the Zipf head) and loses where it doesn't
// (the tail a flood's TTL horizon can't reach but a Chord lookup resolves in
// O(log n) hops). This bench sweeps the workload's Zipf exponent across all
// six protocols and splits success by popularity band, making the crossover
// measurable: as skew flattens, cache hit rates collapse while the DHT's
// success stays flat — and the hybrid tracks whichever plane is winning.
//
// Like every dynamic-scenario bench this runs on the parallel engine:
// --shards=K is wall-clock-only, and the --json output is byte-identical for
// every K at a fixed seed (CI diffs shards=1 vs shards=4).
#include <cstdio>
#include <future>
#include <string>
#include <vector>

#include "fig_common.h"
#include "metrics/report.h"

int main(int argc, char** argv) {
  using namespace locaware;
  const bench::FigOptions options = bench::ParseArgs(argc, argv);
  const uint64_t queries = options.num_queries;

  std::printf("== Ablation: popularity skew vs protocol (%llu queries) ==\n",
              static_cast<unsigned long long>(queries));
  std::printf("run: seed=%llu shards=%u\n\n",
              static_cast<unsigned long long>(options.seed), options.shards);

  struct Cell {
    core::ProtocolKind kind;
    double zipf;
  };
  std::vector<Cell> cells;
  for (double zipf : {0.4, 0.8, 1.2}) {
    for (core::ProtocolKind kind : core::AllProtocolKinds()) {
      cells.push_back({kind, zipf});
    }
  }

  std::vector<std::future<Result<core::ExperimentResult>>> futures;
  for (const Cell& cell : cells) {
    futures.push_back(std::async(std::launch::async, [cell, queries, &options] {
      core::ExperimentConfig cfg =
          core::MakePaperConfig(cell.kind, queries, options.seed);
      cfg.scheduler.shards = options.shards;
      cfg.scheduler.workers = options.workers;
      cfg.scheduler.work_stealing = options.steal;
      cfg.scheduler.placement = options.placement;
      cfg.workload.zipf_exponent = cell.zipf;
      char label[64];
      std::snprintf(label, sizeof label, "%s zipf=%.1f",
                    core::ProtocolKindName(cell.kind), cell.zipf);
      cfg.label = label;
      return core::RunExperiment(cfg, options.buckets);
    }));
  }
  // Failures are reported from the main thread after every worker joined (an
  // exit() inside a worker would tear down statics under running siblings).
  std::vector<core::ExperimentResult> results;
  results.reserve(futures.size());
  bool failed = false;
  for (auto& f : futures) {
    auto result = f.get();
    if (!result.ok()) {
      std::fprintf(stderr, "experiment failed: %s\n",
                   result.status().ToString().c_str());
      failed = true;
      continue;
    }
    results.push_back(std::move(result).ValueOrDie());
  }
  if (failed) return 1;

  std::printf("%-21s %5s %8s %8s %8s %9s %9s %9s %9s\n", "cell", "zipf",
              "success", "msgs/q", "KB/q", "dht hops", "escalate", "head ok",
              "tail ok");
  double prev_zipf = -1;
  for (size_t i = 0; i < results.size(); ++i) {
    if (cells[i].zipf != prev_zipf && prev_zipf >= 0) std::printf("\n");
    prev_zipf = cells[i].zipf;
    const metrics::Summary& s = results[i].summary;
    // Head = the ten most popular ranks; tail = rank 100 and deeper.
    const auto bands =
        metrics::ByPopularity(results[i].records, {10, 100, 1u << 30});
    const double mean_hops =
        s.dht_lookups == 0
            ? 0.0
            : static_cast<double>(s.dht_hops) / static_cast<double>(s.dht_lookups);
    std::printf("%-21s %5.1f %7.1f%% %8.1f %8.2f %9.2f %9llu %8.1f%% %8.1f%%\n",
                results[i].label.c_str(), cells[i].zipf, s.success_rate * 100,
                s.msgs_per_query, s.bytes_per_query / 1024.0, mean_hops,
                static_cast<unsigned long long>(s.hybrid_escalations),
                bands[0].success_rate * 100, bands[2].success_rate * 100);
  }

  bench::MaybeWriteJson(results, options);

  std::printf(
      "\nreading guide: at high skew ('zipf=1.2') almost every query hits the\n"
      "head, indexes stay hot, and the cache protocols match flooding's\n"
      "success at a fraction of its traffic — the hybrid rarely escalates. As\n"
      "the workload flattens ('zipf=0.4') repeat queries vanish: cache hit\n"
      "rates collapse and flooding's TTL horizon misses rare files, while the\n"
      "DHT finds every published key in O(log n) hops regardless of rank. The\n"
      "hybrid escalates exactly on the misses, buying the tail's findability\n"
      "without giving up the head's cheap cache answers.\n");
  return 0;
}
