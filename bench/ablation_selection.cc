// Ablation: provider-selection strategy (paper §5.1's "adjusted" strategy).
//
// Locaware's answer carries several providers; what the requester does with
// them decides the download distance. The paper uses locId-match first, then
// RTT probing. This bench isolates that choice on identical runs.
#include <cstdio>
#include <future>
#include <vector>

#include "core/experiment.h"

int main(int argc, char** argv) {
  using namespace locaware;
  const uint64_t queries =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2500;

  std::printf("== Ablation: provider selection (Locaware, %llu queries) ==\n\n",
              static_cast<unsigned long long>(queries));
  std::printf("%-16s %10s %12s %10s %12s\n", "strategy", "success",
              "download ms", "loc-match", "probes/query");

  std::vector<std::future<std::string>> rows;
  for (core::SelectionStrategy strategy :
       {core::SelectionStrategy::kLocIdThenRtt, core::SelectionStrategy::kMinRtt,
        core::SelectionStrategy::kRandom, core::SelectionStrategy::kFirstResponder}) {
    rows.push_back(std::async(std::launch::async, [strategy, queries] {
      core::ExperimentConfig cfg =
          core::MakePaperConfig(core::ProtocolKind::kLocaware, queries, 42);
      cfg.params.selection = strategy;
      auto r = std::move(core::RunExperiment(cfg, 4)).ValueOrDie();
      // Probe traffic is inside msgs_per_query; report it separately by
      // re-deriving from the records via the series breakdown.
      char buf[180];
      std::snprintf(buf, sizeof(buf), "%-16s %9.1f%% %12.1f %9.1f%% %12.2f",
                    core::SelectionStrategyName(strategy),
                    r.summary.success_rate * 100, r.summary.avg_download_ms,
                    r.summary.loc_match_rate * 100,
                    r.summary.msgs_per_query -
                        (r.series.empty() ? 0.0
                                          : r.series.back().query_msgs_per_query));
      return std::string(buf);
    }));
  }
  for (auto& row : rows) std::printf("%s\n", row.get().c_str());

  std::printf(
      "\nreading guide: locid-then-rtt gets within a few ms of exhaustive\n"
      "min-rtt probing while probing far less — locality ids substitute for\n"
      "measurement. Random/first-responder show what location-obliviousness\n"
      "costs in download distance.\n");
  return 0;
}
