// Ablation: landmark count (paper §5.1's design discussion).
//
// "We use 4 landmarks, which results in 24 possible locIds, because a larger
// number of landmarks will scatter the peers into many different localities.
// For instance, given 5 landmarks, i.e., 120 locIds, we only obtain an
// average of 8 peers with the same locId."
//
// This bench reproduces that reasoning quantitatively: for k = 2..6 it
// reports the locality census and the effect on Locaware's download distance
// and same-locality hit rate.
#include <cstdio>
#include <future>
#include <vector>

#include "core/engine.h"
#include "core/experiment.h"
#include "net/landmark.h"

int main(int argc, char** argv) {
  using namespace locaware;
  const uint64_t queries =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2500;

  std::printf("== Ablation: number of landmarks (Locaware, %llu queries) ==\n\n",
              static_cast<unsigned long long>(queries));
  std::printf("%4s %8s %10s %12s %10s %9s %12s %10s\n", "k", "locIds",
              "inhabited", "peers/locId", "success", "locm%", "download ms",
              "msgs/q");

  std::vector<std::future<std::string>> rows;
  for (size_t k = 2; k <= 6; ++k) {
    rows.push_back(std::async(std::launch::async, [k, queries] {
      core::ExperimentConfig cfg =
          core::MakePaperConfig(core::ProtocolKind::kLocaware, queries, 42);
      cfg.num_landmarks = k;
      auto engine = std::move(core::Engine::Create(cfg)).ValueOrDie();

      std::vector<LocId> ids;
      for (PeerId p = 0; p < engine->num_peers(); ++p) {
        ids.push_back(engine->loc_of(p));
      }
      const net::LocIdStats stats = net::AnalyzeLocIds(ids, k);

      engine->Run();
      const metrics::Summary s = metrics::Summarize(engine->metrics());

      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "%4zu %8u %10u %12.1f %9.1f%% %9.1f %12.1f %10.1f", k,
                    stats.num_possible, stats.num_inhabited,
                    stats.mean_peers_per_inhabited, s.success_rate * 100,
                    s.loc_match_rate * 100, s.avg_download_ms, s.msgs_per_query);
      return std::string(buf);
    }));
  }
  for (auto& row : rows) std::printf("%s\n", row.get().c_str());

  std::printf(
      "\nreading guide: beyond 4 landmarks the locId space outgrows the peer\n"
      "population, same-locality providers become rare, and the download-\n"
      "distance gain decays — the paper's argument for k = 4.\n");
  return 0;
}
