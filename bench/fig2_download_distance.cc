// Regenerates paper Figure 2: average download distance (requester→provider
// RTT, ms) as the number of queries grows, for the four systems.
//
// Paper's reported shape: Locaware ≈14% below the others and *improving* with
// query volume (natural replication puts providers in more localities);
// the location-oblivious systems stay flat.
#include <cstdio>

#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace locaware;
  const bench::FigOptions options = bench::ParseArgs(argc, argv);
  bench::PrintHeader("Figure 2: comparison of download distance", options);

  const auto results = bench::RunAllProtocols(options);
  const auto series = bench::ToSeries(results);

  std::fputs(metrics::FormatFigureTable(series, metrics::Field::kDownloadMs,
                                        "Average download distance (ms RTT)")
                 .c_str(),
             stdout);
  std::printf("\nCSV:\n%s",
              metrics::FormatFigureCsv(series, metrics::Field::kDownloadMs).c_str());
  bench::MaybeWriteSvg(series, metrics::Field::kDownloadMs,
                       "Figure 2: comparison of download distance", "ms RTT", options);
  bench::MaybeWriteJson(results, options);

  bench::PrintSummaries(results);

  // Paper-vs-measured headline: Locaware's reduction vs the best baseline,
  // and its first-bucket -> last-bucket trend.
  const auto& locaware = results[3];
  double best_baseline = 1e18;
  for (int i = 0; i < 3; ++i) {
    best_baseline = std::min(best_baseline, results[i].summary.avg_download_ms);
  }
  const double reduction =
      (1.0 - locaware.summary.avg_download_ms / best_baseline) * 100.0;
  std::printf("\nheadline: Locaware download distance vs best baseline: -%.1f%%"
              " (paper: ~14%%)\n",
              reduction);
  if (locaware.series.size() >= 2) {
    const double first = locaware.series.front().avg_download_ms;
    const double last = locaware.series.back().avg_download_ms;
    std::printf("trend: Locaware first bucket %.1f ms -> last bucket %.1f ms"
                " (paper: improves with more queries)\n",
                first, last);
  }
  return 0;
}
