// micro_intern: string plane vs id plane, head to head.
//
// Measures the two operations the interning PR moved off strings:
//   * keyword-match — "does file f satisfy query q" (the per-file check the
//     catalog and every file store answer runs): string-compare containment
//     vs sorted-id containment.
//   * ri-lookup — ResponseIndex::LookupByKeywords on a paper-sized 50-entry
//     index: the id path (posting-list intersection) vs a faithful
//     reimplementation of the string-era index (full scan with string
//     compares).
//   * bloom-probe — Bloom-filter membership for a 3-keyword query: Murmur3
//     per string vs the catalog's precomputed per-keyword 64-bit hash pair.
//
// Emits a human table plus JSON (common/json_writer) so BENCH_*.json
// trajectories can track the ratio over time. Usage:
//   micro_intern [--json=PATH]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "bloom/bloom_filter.h"
#include "cache/response_index.h"
#include "catalog/file_catalog.h"
#include "common/json_writer.h"
#include "common/keyword_set.h"
#include "common/rng.h"
#include "common/string_util.h"

namespace {

using namespace locaware;
using Clock = std::chrono::steady_clock;

/// The string-era response index, reimplemented as the baseline: entries
/// keyed by filename, looked up by scanning every entry with string-compare
/// containment (what cache/response_index.cc did before interning).
class StringIndexBaseline {
 public:
  void Add(const std::string& filename, std::vector<std::string> keywords) {
    entries_.emplace(filename, std::move(keywords));
  }

  size_t LookupByKeywords(const std::vector<std::string>& query) const {
    size_t hits = 0;
    for (const auto& [name, keywords] : entries_) {
      if (ContainsAllKeywords(keywords, query)) ++hits;
    }
    return hits;
  }

 private:
  std::unordered_map<std::string, std::vector<std::string>> entries_;
};

/// Runs `op(i)` repeatedly for ~min_seconds and returns ops/second.
template <typename Op>
double Throughput(Op&& op, double min_seconds = 0.4) {
  // Warm-up pass so first-touch effects do not land in the timed region.
  for (size_t i = 0; i < 1000; ++i) op(i);
  size_t iters = 0;
  const auto start = Clock::now();
  double elapsed = 0;
  do {
    for (size_t burst = 0; burst < 2000; ++burst) op(iters++);
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < min_seconds);
  return static_cast<double>(iters) / elapsed;
}

volatile size_t g_sink = 0;  // defeats dead-code elimination

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "usage: %s [--json=PATH]\n", argv[0]);
      return 2;
    }
  }

  // The paper's catalog shape; the RI holds the paper's 50 entries.
  Rng rng(2026);
  auto catalog = std::move(catalog::FileCatalog::Generate(
                               catalog::CatalogConfig{}, &rng))
                     .ValueOrDie();

  constexpr size_t kResident = 50;
  cache::ResponseIndexConfig ri_cfg;
  ri_cfg.max_filenames = kResident;
  cache::ResponseIndex id_index(ri_cfg);
  StringIndexBaseline string_index;
  for (FileId f = 0; f < kResident; ++f) {
    id_index.AddProvider(f, catalog.sorted_keywords(f),
                         cache::ProviderEntry{1, 0, 0}, 0);
    std::vector<std::string> kws;
    for (KeywordId kw : catalog.keywords(f)) kws.push_back(catalog.keyword(kw));
    string_index.Add(catalog.filename(f), std::move(kws));
  }

  // Query mix: 2-keyword subsets of resident files (hits) interleaved with
  // queries for files outside the index (misses) — the hop-by-hop reality.
  struct Query {
    std::vector<KeywordId> ids;        // sorted
    std::vector<std::string> strings;  // original order
  };
  std::vector<Query> queries;
  Rng qrng(7);
  for (size_t i = 0; i < 256; ++i) {
    const FileId f = (i % 2 == 0)
                         ? static_cast<FileId>(qrng.UniformInt(0, kResident - 1))
                         : static_cast<FileId>(
                               qrng.UniformInt(kResident, catalog.num_files() - 1));
    Query q;
    for (size_t pos : qrng.SampleIndices(catalog.keywords(f).size(), 2)) {
      const KeywordId kw = catalog.keywords(f)[pos];
      q.ids.push_back(kw);
      q.strings.push_back(catalog.keyword(kw));
    }
    std::sort(q.ids.begin(), q.ids.end());
    queries.push_back(std::move(q));
  }

  // --- keyword-match: one file vs one query ---------------------------------
  std::vector<std::vector<std::string>> file_kw_strings;
  for (FileId f = 0; f < catalog.num_files(); ++f) {
    std::vector<std::string> kws;
    for (KeywordId kw : catalog.keywords(f)) kws.push_back(catalog.keyword(kw));
    file_kw_strings.push_back(std::move(kws));
  }
  const double match_string_ops = Throughput([&](size_t i) {
    const Query& q = queries[i & 255];
    g_sink = g_sink +
             ContainsAllKeywords(file_kw_strings[i % catalog.num_files()], q.strings);
  });
  const double match_id_ops = Throughput([&](size_t i) {
    const Query& q = queries[i & 255];
    g_sink = g_sink + ContainsAllIds(catalog.sorted_keywords(
                                 static_cast<FileId>(i % catalog.num_files())),
                             q.ids);
  });

  // --- ri-lookup: full 50-entry index ---------------------------------------
  const double ri_string_ops = Throughput([&](size_t i) {
    g_sink = g_sink + string_index.LookupByKeywords(queries[i & 255].strings);
  });
  const double ri_id_ops = Throughput([&](size_t i) {
    g_sink = g_sink + id_index.LookupByKeywords(queries[i & 255].ids, 1).size();
  });

  // --- bloom-probe: 3 keywords against one neighbor filter ------------------
  bloom::BloomFilter filter(1200, 4);
  for (FileId f = 0; f < kResident; ++f) {
    for (KeywordId kw : catalog.keywords(f)) {
      filter.Insert(catalog.KeywordBloomHash(kw));
    }
  }
  const double bloom_string_ops = Throughput([&](size_t i) {
    const auto& kws = file_kw_strings[i % catalog.num_files()];
    bool all = true;
    for (const std::string& kw : kws) all &= filter.MayContain(kw);
    g_sink = g_sink + all;
  });
  const double bloom_id_ops = Throughput([&](size_t i) {
    const FileId f = static_cast<FileId>(i % catalog.num_files());
    bool all = true;
    for (KeywordId kw : catalog.keywords(f)) {
      all &= filter.MayContain(catalog.KeywordBloomHash(kw));
    }
    g_sink = g_sink + all;
  });

  struct Row {
    const char* name;
    double string_ops;
    double id_ops;
  };
  const Row rows[] = {
      {"keyword_match", match_string_ops, match_id_ops},
      {"ri_lookup", ri_string_ops, ri_id_ops},
      {"bloom_probe", bloom_string_ops, bloom_id_ops},
  };

  std::printf("== micro_intern: string plane vs id plane ==\n");
  std::printf("%-16s %16s %16s %9s\n", "operation", "string ops/s", "id ops/s",
              "speedup");
  for (const Row& r : rows) {
    std::printf("%-16s %16.0f %16.0f %8.2fx\n", r.name, r.string_ops, r.id_ops,
                r.id_ops / r.string_ops);
  }

  JsonWriter w;
  w.BeginObject();
  w.Key("bench");
  w.String("micro_intern");
  w.Key("resident_files");
  w.Uint(kResident);
  w.Key("results");
  w.BeginArray();
  for (const Row& r : rows) {
    w.BeginObject();
    w.Key("operation");
    w.String(r.name);
    w.Key("string_ops_per_sec");
    w.Double(r.string_ops);
    w.Key("id_ops_per_sec");
    w.Double(r.id_ops);
    w.Key("speedup");
    w.Double(r.id_ops / r.string_ops);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  const std::string doc = w.TakeString();

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << doc << '\n';
    if (!out.good()) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("\nwrote %s\n", json_path.c_str());
  } else {
    std::printf("\n%s\n", doc.c_str());
  }
  return 0;
}
