// Microbenchmarks for the overlay graph: generation, churn operations and
// the connectivity sweeps the engine relies on.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "overlay/overlay_graph.h"

namespace {

using locaware::PeerId;
using locaware::Rng;
using locaware::overlay::OverlayConfig;
using locaware::overlay::OverlayGraph;

void BM_Generate(benchmark::State& state) {
  OverlayConfig cfg;
  cfg.num_peers = static_cast<size_t>(state.range(0));
  cfg.avg_degree = 3.0;
  uint64_t seed = 1;
  for (auto _ : state) {
    Rng rng(seed++);
    auto g = OverlayGraph::Generate(cfg, &rng);
    benchmark::DoNotOptimize(g);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Generate)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

void BM_DepartJoinCycle(benchmark::State& state) {
  Rng rng(2);
  OverlayConfig cfg;
  cfg.num_peers = 1000;
  auto g = std::move(OverlayGraph::Generate(cfg, &rng)).ValueOrDie();
  PeerId p = 0;
  for (auto _ : state) {
    p = (p + 1) % 1000;
    g.Depart(p);
    g.Join(p);
    auto links = g.LinkToRandomPeers(p, 3, &rng);
    benchmark::DoNotOptimize(links);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DepartJoinCycle);

void BM_NeighborScan(benchmark::State& state) {
  // The inner loop of every ForwardTargets implementation.
  Rng rng(3);
  OverlayConfig cfg;
  cfg.num_peers = 1000;
  auto g = std::move(OverlayGraph::Generate(cfg, &rng)).ValueOrDie();
  PeerId p = 0;
  size_t sink = 0;
  for (auto _ : state) {
    p = (p + 1) % 1000;
    for (PeerId nb : g.Neighbors(p)) sink += g.Degree(nb);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NeighborScan);

void BM_LargestComponent(benchmark::State& state) {
  Rng rng(4);
  OverlayConfig cfg;
  cfg.num_peers = static_cast<size_t>(state.range(0));
  auto g = std::move(OverlayGraph::Generate(cfg, &rng)).ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.LargestComponentFraction());
  }
}
BENCHMARK(BM_LargestComponent)->Arg(1000)->Arg(5000)->Unit(benchmark::kMicrosecond);

}  // namespace
