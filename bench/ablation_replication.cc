// Ablation: leveraging natural replication (paper §4.1.2).
//
// Locaware's distinctive move is advertising the *requester* as a new
// provider — in the passing response and at the answering peer's index. That
// is what multiplies providers across localities and makes Figure 2's curve
// fall over time. This bench disables just that mechanism and compares.
#include <cstdio>
#include <future>
#include <vector>

#include "core/experiment.h"

int main(int argc, char** argv) {
  using namespace locaware;
  const uint64_t queries =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4000;

  std::printf("== Ablation: requester-becomes-provider (Locaware, %llu queries) ==\n\n",
              static_cast<unsigned long long>(queries));

  auto run = [queries](bool leverage) {
    return std::async(std::launch::async, [queries, leverage] {
      core::ExperimentConfig cfg =
          core::MakePaperConfig(core::ProtocolKind::kLocaware, queries, 42);
      cfg.params.requester_becomes_provider = leverage;
      cfg.label = leverage ? "with leverage" : "without leverage";
      return std::move(core::RunExperiment(cfg, 8)).ValueOrDie();
    });
  };
  auto with_f = run(true);
  auto without_f = run(false);
  const core::ExperimentResult with = with_f.get();
  const core::ExperimentResult without = without_f.get();

  std::printf("%-18s %10s %12s %10s %14s\n", "variant", "success",
              "download ms", "loc-match", "providers/query");
  for (const auto* r : {&with, &without}) {
    std::printf("%-18s %9.1f%% %12.1f %9.1f%% %14.2f\n", r->label.c_str(),
                r->summary.success_rate * 100, r->summary.avg_download_ms,
                r->summary.loc_match_rate * 100, r->summary.avg_providers_offered);
  }

  std::printf("\ndownload-distance trend (x = queries so far):\n");
  std::printf("%10s %16s %18s\n", "queries", "with leverage", "without leverage");
  for (size_t i = 0; i < with.series.size() && i < without.series.size(); ++i) {
    std::printf("%10llu %16.1f %18.1f\n",
                static_cast<unsigned long long>(with.series[i].queries_end),
                with.series[i].avg_download_ms, without.series[i].avg_download_ms);
  }

  std::printf(
      "\nreading guide: without the requester-as-provider rule, indexes only\n"
      "ever name the original responders, provider lists stay shallow, and\n"
      "the falling Fig. 2 trend flattens — the mechanism behind the paper's\n"
      "'improvement with the increase of queries' observation.\n");
  return 0;
}
