// Microbenchmarks for the underlay: Waxman build + APSP cost, the O(1) RTT
// lookups the engine makes per message, and locId computation.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "net/landmark.h"
#include "net/underlay.h"

namespace {

using locaware::PeerId;
using locaware::Rng;
using locaware::net::GeometricUnderlay;
using locaware::net::GeometricUnderlayConfig;

void BM_BuildGeometric(benchmark::State& state) {
  GeometricUnderlayConfig cfg;
  cfg.num_routers = static_cast<size_t>(state.range(0));
  cfg.num_peers = 1000;
  uint64_t seed = 1;
  for (auto _ : state) {
    Rng rng(seed++);
    auto u = GeometricUnderlay::Build(cfg, &rng);
    benchmark::DoNotOptimize(u);
  }
  state.SetLabel("routers=" + std::to_string(state.range(0)) + " (incl. APSP)");
}
BENCHMARK(BM_BuildGeometric)->Arg(100)->Arg(200)->Arg(400)->Unit(benchmark::kMillisecond);

void BM_RttLookup(benchmark::State& state) {
  Rng rng(2);
  GeometricUnderlayConfig cfg;
  cfg.num_routers = 200;
  cfg.num_peers = 1000;
  auto u = std::move(GeometricUnderlay::Build(cfg, &rng)).ValueOrDie();
  PeerId a = 0, b = 500;
  double sink = 0;
  for (auto _ : state) {
    a = (a + 1) % 1000;
    b = (b + 7) % 1000;
    sink += u->RttMs(a, b);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RttLookup);

void BM_ComputeLocId(benchmark::State& state) {
  Rng rng(3);
  GeometricUnderlayConfig cfg;
  cfg.num_routers = 200;
  cfg.num_peers = 1000;
  cfg.num_landmarks = static_cast<size_t>(state.range(0));
  auto u = std::move(GeometricUnderlay::Build(cfg, &rng)).ValueOrDie();
  PeerId p = 0;
  for (auto _ : state) {
    p = (p + 1) % 1000;
    benchmark::DoNotOptimize(locaware::net::ComputeLocId(*u, p));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ComputeLocId)->Arg(4)->Arg(8);

}  // namespace
