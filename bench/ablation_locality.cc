// Ablation: does the locId mechanism need coherent geometry?
//
// Locaware's locIds are landmark-RTT orderings; their value rests on the
// assumption that "physically close peers are likely to produce the same
// ordering" (§4.1.1). This bench swaps the BRITE-style geometric underlay for
// a control model with i.i.d. pairwise RTTs — same band, zero spatial
// structure — and shows the download-distance gain evaporating.
#include <cstdio>
#include <future>
#include <vector>

#include "core/experiment.h"

int main(int argc, char** argv) {
  using namespace locaware;
  const uint64_t queries =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2500;

  std::printf("== Ablation: geometric vs geometry-free underlay (%llu queries) ==\n\n",
              static_cast<unsigned long long>(queries));
  std::printf("%-12s %-10s %10s %12s %10s\n", "protocol", "underlay", "success",
              "download ms", "loc-match");

  std::vector<std::future<std::string>> rows;
  for (core::ProtocolKind kind :
       {core::ProtocolKind::kFlooding, core::ProtocolKind::kLocaware}) {
    for (bool uniform : {false, true}) {
      rows.push_back(std::async(std::launch::async, [kind, uniform, queries] {
        core::ExperimentConfig cfg = core::MakePaperConfig(kind, queries, 42);
        cfg.use_uniform_underlay = uniform;
        auto r = std::move(core::RunExperiment(cfg, 4)).ValueOrDie();
        char buf[160];
        std::snprintf(buf, sizeof(buf), "%-12s %-10s %9.1f%% %12.1f %9.1f%%",
                      r.label.c_str(), uniform ? "uniform" : "geometric",
                      r.summary.success_rate * 100, r.summary.avg_download_ms,
                      r.summary.loc_match_rate * 100);
        return std::string(buf);
      }));
    }
  }
  for (auto& row : rows) std::printf("%s\n", row.get().c_str());

  std::printf(
      "\nreading guide: on the uniform underlay locIds are noise, Locaware's\n"
      "same-locality matches stop predicting closeness, and its download\n"
      "distance falls back to the oblivious baseline — location awareness\n"
      "needs the Internet's spatial coherence, not just the ids.\n");
  return 0;
}
