// Microbenchmarks for common/flat_map.h: the open-addressing tables the data
// plane runs on (ShardState pending/slot_of/touched, ResponseIndex entries,
// NodeState neighbor maps, catalog interning) head-to-head against the
// std::unordered_map they replaced.
//
// What the flat tables buy and these benchmarks pin down: one allocation per
// table instead of one per element (the `allocs/op` counter on the insert
// benchmarks), and probe sequences over contiguous slots instead of pointer
// chases through heap nodes (the hit/miss lookup times). Sizes are
// workload-shaped: 64 ~ a node's neighbor maps and a shard's in-flight
// queries, 4096 ~ the interning tables of a paper-sized catalog.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <new>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/flat_map.h"

// --- allocation accounting ---------------------------------------------------
// Bench-binary-wide operator new/delete overrides with a thread-local
// counter; only deltas around measured regions are reported.
namespace {
thread_local uint64_t g_alloc_count = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace {

using locaware::FlatMap;

/// Workload-shaped keys: multiplicative spread over a dense id range, the
/// shape QueryId/PeerId/FileId keys take in the engine.
std::vector<uint64_t> MakeKeys(size_t n) {
  std::vector<uint64_t> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) keys.push_back(i * 2654435761u % (n * 8));
  return keys;
}

void ReportAllocs(benchmark::State& state, uint64_t allocs_before) {
  state.counters["allocs/op"] = benchmark::Counter(
      static_cast<double>(g_alloc_count - allocs_before),
      benchmark::Counter::kAvgIterations);
}

template <typename Map>
void FillInsertErase(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const std::vector<uint64_t> keys = MakeKeys(n);
  Map map;
  size_t i = 0;
  const uint64_t allocs_before = g_alloc_count;
  for (auto _ : state) {
    // Steady-state churn at plateau size: the pending/slot_of/touched life
    // cycle — insert a fresh query, finalize (erase) the oldest.
    map.try_emplace(keys[i % n] + i, i);
    if (map.size() > n) map.erase(keys[(i - n) % n] + (i - n));
    ++i;
  }
  ReportAllocs(state, allocs_before);
  state.SetItemsProcessed(state.iterations());
}

void BM_FlatMapInsertEraseChurn(benchmark::State& state) {
  FillInsertErase<FlatMap<uint64_t, uint64_t>>(state);
}
BENCHMARK(BM_FlatMapInsertEraseChurn)->Arg(64)->Arg(4096);

void BM_StdUnorderedInsertEraseChurn(benchmark::State& state) {
  FillInsertErase<std::unordered_map<uint64_t, uint64_t>>(state);
}
BENCHMARK(BM_StdUnorderedInsertEraseChurn)->Arg(64)->Arg(4096);

template <typename Map>
void LookupHit(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const std::vector<uint64_t> keys = MakeKeys(n);
  Map map;
  for (size_t i = 0; i < n; ++i) map.try_emplace(keys[i], i);
  size_t i = 0;
  for (auto _ : state) {
    auto it = map.find(keys[i++ % n]);
    benchmark::DoNotOptimize(it);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_FlatMapLookupHit(benchmark::State& state) {
  LookupHit<FlatMap<uint64_t, uint64_t>>(state);
}
BENCHMARK(BM_FlatMapLookupHit)->Arg(64)->Arg(4096);

void BM_StdUnorderedLookupHit(benchmark::State& state) {
  LookupHit<std::unordered_map<uint64_t, uint64_t>>(state);
}
BENCHMARK(BM_StdUnorderedLookupHit)->Arg(64)->Arg(4096);

template <typename Map>
void LookupMiss(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const std::vector<uint64_t> keys = MakeKeys(n);
  Map map;
  for (size_t i = 0; i < n; ++i) map.try_emplace(keys[i], i);
  uint64_t probe = 1;  // odd stride over a disjoint key range
  for (auto _ : state) {
    auto it = map.find((probe += 2) + (n * 16));
    benchmark::DoNotOptimize(it);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_FlatMapLookupMiss(benchmark::State& state) {
  LookupMiss<FlatMap<uint64_t, uint64_t>>(state);
}
BENCHMARK(BM_FlatMapLookupMiss)->Arg(64)->Arg(4096);

void BM_StdUnorderedLookupMiss(benchmark::State& state) {
  LookupMiss<std::unordered_map<uint64_t, uint64_t>>(state);
}
BENCHMARK(BM_StdUnorderedLookupMiss)->Arg(64)->Arg(4096);

void BM_FlatMapStringHeterogeneousHit(benchmark::State& state) {
  // The catalog's interning shape: string_view keys into stable storage,
  // probed with whatever string the caller holds — no temporary
  // std::string materializes on lookup.
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<std::string> words;
  words.reserve(n);
  for (size_t i = 0; i < n; ++i) words.push_back("keyword" + std::to_string(i));
  FlatMap<std::string_view, uint64_t> map;
  map.reserve(n);
  for (size_t i = 0; i < n; ++i) map.try_emplace(words[i], i);
  size_t i = 0;
  const uint64_t allocs_before = g_alloc_count;
  for (auto _ : state) {
    auto it = map.find(words[i++ % n]);
    benchmark::DoNotOptimize(it);
  }
  ReportAllocs(state, allocs_before);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlatMapStringHeterogeneousHit)->Arg(4096);

void BM_FlatMapReservedFill(benchmark::State& state) {
  // Reserve-then-fill, the catalog-load path: one buffer allocation total,
  // however many elements follow.
  const size_t n = static_cast<size_t>(state.range(0));
  const std::vector<uint64_t> keys = MakeKeys(n);
  const uint64_t allocs_before = g_alloc_count;
  for (auto _ : state) {
    FlatMap<uint64_t, uint64_t> map;
    map.reserve(n);
    for (size_t i = 0; i < n; ++i) map.try_emplace(keys[i], i);
    benchmark::DoNotOptimize(map);
  }
  state.counters["allocs/fill"] = benchmark::Counter(
      static_cast<double>(g_alloc_count - allocs_before),
      benchmark::Counter::kAvgIterations);
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FlatMapReservedFill)->Arg(4096);

}  // namespace
