// Regenerates paper Figure 4: success rate (satisfied / submitted queries) as
// the number of queries grows, for the four systems.
//
// Paper's reported shape: Flooding wins (whole-network scope); Locaware
// "increases hit ratio by 23% wrt Dicas and 33% wrt Dicas-keys".
#include <cstdio>

#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace locaware;
  const bench::FigOptions options = bench::ParseArgs(argc, argv);
  bench::PrintHeader("Figure 4: comparison of success rate", options);

  const auto results = bench::RunAllProtocols(options);
  const auto series = bench::ToSeries(results);

  std::fputs(metrics::FormatFigureTable(series, metrics::Field::kSuccessRate,
                                        "Success rate (fraction of queries satisfied)")
                 .c_str(),
             stdout);
  std::printf("\nCSV:\n%s",
              metrics::FormatFigureCsv(series, metrics::Field::kSuccessRate).c_str());
  bench::MaybeWriteSvg(series, metrics::Field::kSuccessRate,
                       "Figure 4: comparison of success rate", "fraction satisfied",
                       options);
  bench::MaybeWriteJson(results, options);

  bench::PrintSummaries(results);

  const double locaware = results[3].summary.success_rate;
  const double dicas = results[1].summary.success_rate;
  const double dicas_keys = results[2].summary.success_rate;
  if (dicas > 0 && dicas_keys > 0) {
    std::printf("\nheadline: Locaware hit ratio vs Dicas: +%.1f%% (paper: +23%%)\n",
                (locaware / dicas - 1.0) * 100.0);
    std::printf("headline: Locaware hit ratio vs Dicas-Keys: +%.1f%% (paper: +33%%)\n",
                (locaware / dicas_keys - 1.0) * 100.0);
  }
  std::printf("note: ~1/e of files receive no initial copy (1000 peers x 3 files\n"
              "      over 3000 files), so even Flooding cannot exceed ~63%%.\n");
  return 0;
}
