// Extension bench: location-aware query routing (paper §6 future work).
//
// "Results motivate us to elaborate more on location awareness ... One way is
// to investigate location-aware query routing in unstructured systems, which
// has not been fully exploited yet."
//
// We implemented the natural reading: inside each of Locaware's forwarding
// tiers, prefer neighbors in the requester's locality, steering the walk
// toward regions whose providers are close to the requester. This bench
// quantifies what the future-work idea would have bought.
#include <cstdio>
#include <future>
#include <vector>

#include "core/experiment.h"

int main(int argc, char** argv) {
  using namespace locaware;
  const uint64_t queries =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4000;

  std::printf(
      "== Extension: location-aware query routing (Locaware, %llu queries) ==\n\n",
      static_cast<unsigned long long>(queries));

  auto run = [queries](bool enabled, uint64_t seed) {
    return std::async(std::launch::async, [queries, enabled, seed] {
      core::ExperimentConfig cfg =
          core::MakePaperConfig(core::ProtocolKind::kLocaware, queries, seed);
      cfg.params.loc_aware_routing = enabled;
      cfg.label = enabled ? "loc-routing on" : "loc-routing off";
      return std::move(core::RunExperiment(cfg, 8)).ValueOrDie();
    });
  };

  std::printf("%-16s %6s %10s %10s %12s %10s\n", "variant", "seed", "success",
              "msgs/q", "download ms", "loc-match");
  for (uint64_t seed : {42ull, 43ull}) {
    auto off_f = run(false, seed);
    auto on_f = run(true, seed);
    for (const core::ExperimentResult& r : {off_f.get(), on_f.get()}) {
      std::printf("%-16s %6llu %9.1f%% %10.1f %12.1f %9.1f%%\n", r.label.c_str(),
                  static_cast<unsigned long long>(seed),
                  r.summary.success_rate * 100, r.summary.msgs_per_query,
                  r.summary.avg_download_ms, r.summary.loc_match_rate * 100);
    }
  }

  std::printf(
      "\nreading guide: the paper conjectured 'the improvement would be more\n"
      "significant if the location awareness was also incorporated in the\n"
      "query routing' (§5.2); this is that experiment. Measured: restricting\n"
      "forwarding tiers to same-locality neighbors narrows exploration —\n"
      "traffic drops ~15%% but so does success, and download distance barely\n"
      "moves, because provider *selection* already harvests most of the\n"
      "locality benefit. The conjecture does not pay off under the paper's\n"
      "own §5.1 parameters; it would need locality-aware overlay links\n"
      "(the topology-based approaches of [9,13]) to give locId routing\n"
      "targets worth steering toward.\n");
  return 0;
}
