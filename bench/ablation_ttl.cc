// Ablation: query TTL (the paper fixes TTL = 7, the classic Gnutella value).
//
// TTL bounds the search horizon: for Flooding it directly trades traffic for
// success; for Locaware the Bloom-routed walk saturates much earlier, which
// is the whole point of directed search.
#include <cstdio>
#include <future>
#include <vector>

#include "core/experiment.h"

int main(int argc, char** argv) {
  using namespace locaware;
  const uint64_t queries =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2000;

  std::printf("== Ablation: query TTL (%llu queries) ==\n\n",
              static_cast<unsigned long long>(queries));
  std::printf("%-12s %5s %10s %12s %12s\n", "protocol", "TTL", "success",
              "msgs/query", "download ms");

  std::vector<std::future<std::string>> rows;
  for (core::ProtocolKind kind :
       {core::ProtocolKind::kFlooding, core::ProtocolKind::kLocaware}) {
    for (uint32_t ttl : {3u, 5u, 7u, 9u}) {
      rows.push_back(std::async(std::launch::async, [kind, ttl, queries] {
        core::ExperimentConfig cfg = core::MakePaperConfig(kind, queries, 42);
        cfg.params.ttl = ttl;
        auto r = std::move(core::RunExperiment(cfg, 4)).ValueOrDie();
        char buf[160];
        std::snprintf(buf, sizeof(buf), "%-12s %5u %9.1f%% %12.1f %12.1f",
                      r.label.c_str(), ttl, r.summary.success_rate * 100,
                      r.summary.msgs_per_query, r.summary.avg_download_ms);
        return std::string(buf);
      }));
    }
  }
  for (auto& row : rows) std::printf("%s\n", row.get().c_str());

  std::printf(
      "\nreading guide: Flooding's traffic grows multiplicatively with TTL\n"
      "while Locaware's directed walk grows additively — the reduction gap\n"
      "widens with the horizon.\n");
  return 0;
}
