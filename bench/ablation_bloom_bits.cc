// Ablation: Bloom filter width (paper §5.1 sizes 1200 bits for an "enlarged
// response index with 50 filenames of 3 keywords").
//
// Narrow filters saturate: the false-positive rate climbs, queries get
// forwarded to neighbors that cannot answer, and routing precision decays
// into extra traffic. Wide filters waste update bandwidth. This bench sweeps
// the width and reports both sides of the trade.
#include <cstdio>
#include <future>
#include <vector>

#include "bloom/bloom_filter.h"
#include "core/experiment.h"

int main(int argc, char** argv) {
  using namespace locaware;
  const uint64_t queries =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2500;

  // Standalone saturation check at the paper's design point (150 keys).
  std::printf("== filter saturation at 150 keys (50 filenames x 3 keywords) ==\n");
  std::printf("%8s %8s %10s\n", "bits", "fill%", "est. fp%");
  for (size_t bits : {150u, 300u, 600u, 1200u, 2400u}) {
    bloom::BloomFilter bf(bits, 4);
    for (int i = 0; i < 150; ++i) bf.Insert("kw" + std::to_string(i));
    std::printf("%8zu %7.1f%% %9.2f%%\n", bits, bf.FillRatio() * 100,
                bf.EstimatedFpRate() * 100);
  }

  std::printf("\n== Locaware end-to-end, %llu queries ==\n",
              static_cast<unsigned long long>(queries));
  std::printf("%8s %10s %10s %12s %16s\n", "bits", "success", "msgs/q",
              "download ms", "gossip bytes");

  std::vector<std::future<std::string>> rows;
  for (size_t bits : {150u, 300u, 600u, 1200u, 2400u}) {
    rows.push_back(std::async(std::launch::async, [bits, queries] {
      core::ExperimentConfig cfg =
          core::MakePaperConfig(core::ProtocolKind::kLocaware, queries, 42);
      cfg.params.bloom_bits = bits;
      auto r = std::move(core::RunExperiment(cfg, 4)).ValueOrDie();
      char buf[160];
      std::snprintf(buf, sizeof(buf), "%8zu %9.1f%% %10.1f %12.1f %16llu", bits,
                    r.summary.success_rate * 100, r.summary.msgs_per_query,
                    r.summary.avg_download_ms,
                    static_cast<unsigned long long>(r.summary.bloom_update_bytes));
      return std::string(buf);
    }));
  }
  for (auto& row : rows) std::printf("%s\n", row.get().c_str());

  std::printf(
      "\nreading guide: the saturation table is the design-point analysis —\n"
      "at 50 cached filenames a 1200-bit filter keeps fp under a few percent\n"
      "(the paper's sizing), while 150-600 bits would saturate. In the\n"
      "end-to-end runs per-peer indexes hold only a handful of filenames at\n"
      "this query volume, so even narrow filters stay unsaturated and the\n"
      "headline metrics barely move; what the width really buys is headroom\n"
      "for full caches, paid for linearly in gossip bytes.\n");
  return 0;
}
