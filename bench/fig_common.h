// Shared harness for the figure-regeneration benches: runs the paper's four
// systems on the §5.1 configuration and renders one figure's series as a
// fixed-width table plus CSV.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "metrics/report.h"

namespace locaware::bench {

/// Command-line knobs shared by every figure bench.
struct FigOptions {
  uint64_t num_queries = 5000;
  uint64_t seed = 42;
  size_t buckets = 10;
  /// Simulation shards per experiment (SchedulerConfig::shards). Any value
  /// yields identical metrics for a fixed seed — CI's determinism gate diffs
  /// the --json output of --shards=1 against --shards={4,8} to prove it.
  uint32_t shards = 1;
  /// Worker threads per experiment (SchedulerConfig::workers; 0 = one per
  /// shard). Wall-clock only, like shards.
  uint32_t workers = 0;
  /// Intra-window work stealing (SchedulerConfig::work_stealing). Results
  /// are byte-identical on or off; the gate runs both.
  bool steal = true;
  /// Peer → shard placement strategy (SchedulerConfig::placement). Like the
  /// rest of the scheduler block it never changes results — the gate diffs
  /// --placement=clustered JSON against the modulo baseline byte-for-byte.
  sim::PlacementStrategy placement = sim::PlacementStrategy::kModulo;
  /// When non-zero, overrides ExperimentConfig::num_peers and scales the
  /// router plane with it (~1 router per 25 peers, capped at 1000 so the
  /// all-pairs underlay precompute stays tractable at 100k-1M peers).
  size_t peers = 0;
  /// When non-empty, every experiment replays this trace file (text or
  /// binary, sniffed) instead of generating its workload, and the per-shard
  /// event queues are pre-reserved from the trace's query count.
  std::string trace_path;
  /// When non-empty, the bench also renders its figure to this SVG path.
  std::string svg_path;
  /// When non-empty, the figure benches dump every protocol's full result
  /// (summary + series) as a JSON array to this path.
  std::string json_path;
};

/// Parses --queries=N --seed=S --buckets=B --shards=K --peers=N --trace=PATH
/// --svg=PATH --json=PATH (unknown flags are fatal, so a typo cannot
/// silently run the default experiment). The ablation mains share this
/// parser; the figure benches and ablation_churn (CI's churn determinism
/// gate) write --json output.
FigOptions ParseArgs(int argc, char** argv);

/// Writes the figure as an SVG chart when options.svg_path is set.
void MaybeWriteSvg(const std::vector<metrics::LabeledSeries>& series,
                   metrics::Field field, const std::string& title,
                   const std::string& y_label, const FigOptions& options);

/// Writes all results as a JSON array when options.json_path is set — the
/// machine-readable artifact CI's determinism gate byte-compares.
void MaybeWriteJson(const std::vector<core::ExperimentResult>& results,
                    const FigOptions& options);

/// Runs all four protocols on the paper config (plus an optional per-config
/// tweak), in parallel worker threads. Order: Flooding, Dicas, Dicas-Keys,
/// Locaware.
std::vector<core::ExperimentResult> RunAllProtocols(
    const FigOptions& options,
    const std::function<void(core::ExperimentConfig*)>& tweak = {});

/// Converts results to labeled series for the report formatters.
std::vector<metrics::LabeledSeries> ToSeries(
    const std::vector<core::ExperimentResult>& results);

/// Prints the standard run header (config echo) and per-protocol summaries.
void PrintHeader(const std::string& figure, const FigOptions& options);
void PrintSummaries(const std::vector<core::ExperimentResult>& results);

}  // namespace locaware::bench
